//! Property tests: the kernel layer's privatized-merge MTTKRP is
//! deterministic across worker counts (bit-for-bit) and agrees with the
//! sequential `f64` reference to at most one `f32` ulp per cell.

use amped::prelude::*;
use amped::runtime::kernels::{even_blocks, mttkrp_host, FactorsView, FnSource, MttkrpOut};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::ops::Range;

fn run_kernel(
    t: &SparseTensor,
    fs: &[Mat],
    mode: usize,
    blocks: &[Range<usize>],
    workers: usize,
) -> Vec<f32> {
    let r = fs[mode].cols();
    let out = MttkrpOut::zeros(t.dim(mode) as usize, r);
    let src = FnSource::new(|e, m| t.idx(e, m), |e| t.value(e));
    let views = FactorsView::new(fs.iter().map(|f| f.as_slice()).collect(), r);
    mttkrp_host(&src, mode, &views, blocks, workers, &out);
    out.to_vec()
}

/// `a` and `b` are the same bits, or adjacent finite `f32` values (one ulp
/// apart — the one rounding boundary the privatized `f64` merge may land on
/// the other side of after reassociating the sequential reference's sums).
fn within_one_ulp(a: f32, b: f32) -> bool {
    if a.to_bits() == b.to_bits() {
        return true;
    }
    if !a.is_finite() || !b.is_finite() || (a < 0.0) != (b < 0.0) {
        return false;
    }
    // Same sign and finite: the monotone bits trick gives ulp distance.
    a.to_bits().abs_diff(b.to_bits()) <= 1
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The merge order is fixed by block index, so any worker count —
    /// including one worker, and more workers than blocks — produces the
    /// same output bits as the single-worker run.
    #[test]
    fn privatized_merge_is_worker_count_invariant(
        d0 in 2u32..60,
        d1 in 2u32..40,
        d2 in 2u32..40,
        nnz in 1usize..500,
        rank in 1usize..20,
        parts in 1usize..12,
        workers in 1usize..32,
        mode in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let t = GenSpec::uniform(vec![d0, d1, d2], nnz, seed).generate();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37);
        let fs: Vec<Mat> =
            t.shape().iter().map(|&d| Mat::random(d as usize, rank, &mut rng)).collect();
        let blocks = even_blocks(t.nnz(), parts);
        let base = run_kernel(&t, &fs, mode, &blocks, 1);
        let par = run_kernel(&t, &fs, mode, &blocks, workers);
        for (i, (a, b)) in base.iter().zip(&par).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "cell {} differs: {} (1 worker) vs {} ({} workers)", i, a, b, workers
            );
        }
    }

    /// On the privatized path (more than one block) every output cell is a
    /// sum of per-block `f64` partials rounded once, so it matches the
    /// sequential `f64` reference bit-for-bit or lands one `f32` ulp away
    /// (when `f64` reassociation crosses a rounding boundary).
    #[test]
    fn privatized_merge_matches_sequential_reference(
        d0 in 2u32..60,
        d1 in 2u32..40,
        d2 in 2u32..40,
        nnz in 1usize..500,
        rank in 1usize..20,
        parts in 2usize..12,
        workers in 1usize..32,
        mode in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let t = GenSpec::uniform(vec![d0, d1, d2], nnz, seed).generate();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51DE);
        let fs: Vec<Mat> =
            t.shape().iter().map(|&d| Mat::random(d as usize, rank, &mut rng)).collect();
        let blocks = even_blocks(t.nnz(), parts);
        // `even_blocks` collapses tiny inputs into fewer ranges; the
        // privatized path needs at least two.
        prop_assume!(blocks.len() > 1);
        let got = run_kernel(&t, &fs, mode, &blocks, workers);
        let want = mttkrp_ref(&t, &fs, mode);
        for (i, (g, w)) in got.iter().zip(want.as_slice()).enumerate() {
            prop_assert!(
                within_one_ulp(*g, *w),
                "cell {}: kernel {} vs reference {} (more than one ulp apart)", i, g, w
            );
        }
    }
}
