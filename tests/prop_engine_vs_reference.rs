//! Property test: for random tensors, shapes, GPU counts, and shard/ISP
//! granularities, the multi-GPU engine agrees with the sequential reference.

use amped::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
    #[test]
    fn engine_matches_reference_for_random_configs(
        dim0 in 8u32..120,
        dim1 in 8u32..60,
        dim2 in 8u32..60,
        nnz in 50usize..1500,
        gpus in 1usize..5,
        shard_budget in 64usize..2048,
        isp in 16usize..512,
        skew in 0.0f64..1.2,
        seed in 0u64..10_000,
    ) {
        prop_assume!(shard_budget >= isp);
        let t = GenSpec {
            shape: vec![dim0, dim1, dim2],
            nnz,
            skew: vec![skew, 0.0, skew / 2.0],
            seed,
        }
        .generate();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD);
        let factors: Vec<Mat> =
            t.shape().iter().map(|&d| Mat::random(d as usize, 8, &mut rng)).collect();
        let cfg = AmpedConfig {
            rank: 8,
            isp_nnz: isp,
            shard_nnz_budget: shard_budget,
            ..AmpedConfig::default()
        };
        let platform = PlatformSpec::rtx6000_ada_node(gpus).scaled(1e-3);
        let mut engine = AmpedEngine::new(&t, platform, cfg).unwrap();
        let mode = (seed % 3) as usize;
        let (out, timing) = engine.mttkrp_mode(mode, &factors).unwrap();
        let want = mttkrp_ref(&t, &factors, mode);
        prop_assert!(
            out.approx_eq(&want, 2e-3, 1e-3),
            "max diff {} (gpus={gpus}, budget={shard_budget}, isp={isp})",
            out.max_abs_diff(&want)
        );
        prop_assert!(timing.wall > 0.0);
        // Breakdown sanity: every component non-negative.
        for g in &timing.per_gpu {
            prop_assert!(g.compute >= 0.0 && g.h2d >= 0.0 && g.p2p >= 0.0 && g.idle >= 0.0);
        }
    }
}
