//! Property test: the hierarchical all-gather delivers *exactly* the block
//! sets the flat ring delivers — for arbitrary node/GPU shapes, including
//! the 1×m degenerate cluster (where the hierarchy *is* the flat ring) and
//! GPUs contributing empty blocks. Only the schedule (and therefore the
//! modeled time) differs between the two collectives; the delivered data
//! must be indistinguishable, which is what lets engines switch gather
//! algorithms without touching correctness.

use amped::prelude::*;
use amped::runtime::collective::{
    hierarchical_allgather, hierarchical_allgather_time, ring_allgather, ring_allgather_time,
};
use amped::sim::cluster::contiguous_ranges as node_ranges;
use proptest::prelude::*;

proptest! {
    #[test]
    fn prop_hierarchical_delivers_exactly_the_flat_ring_blocks(
        sizes in proptest::collection::vec(1usize..5, 1..5),
        seed in 0u64..1000,
    ) {
        let m: usize = sizes.iter().sum();
        // Deterministic per-GPU blocks from the seed; roughly one in three
        // GPUs contributes an empty block.
        let blocks: Vec<FactorBlock> = (0..m)
            .map(|g| {
                let x = seed.wrapping_mul(2654435761).wrapping_add(g as u64);
                let rows = (x % 3) as usize * (g + 1) % 4;
                FactorBlock {
                    rows: (0..rows as u32).map(|r| r + 100 * g as u32).collect(),
                    data: (0..rows * 8).map(|i| (g * 1000 + i) as f32).collect(),
                }
            })
            .collect();
        let hier = hierarchical_allgather(&blocks, &node_ranges(&sizes));
        let flat = ring_allgather(&blocks);
        prop_assert_eq!(&hier, &flat, "shapes {:?}", sizes);
        // Layout invariant: out[g][src] is src's original block.
        for row in &hier {
            prop_assert_eq!(row, &blocks);
        }
    }

    #[test]
    fn prop_one_node_cluster_times_like_the_flat_ring(
        gpus in 1usize..6,
        bytes in proptest::collection::vec(0u64..10_000_000, 1..6),
    ) {
        let c = ClusterSpec::rtx6000_ada_cluster(1, gpus);
        let mut blocks = bytes;
        blocks.resize(gpus, 0);
        let hier = hierarchical_allgather_time(&c, &blocks);
        let flat = ring_allgather_time(&c.nodes[0].p2p, &blocks);
        prop_assert_eq!(hier, flat, "1×{} must degenerate to the flat ring", gpus);
    }
}

#[test]
fn empty_blocks_everywhere_still_deliver() {
    let blocks = vec![FactorBlock::default(); 6];
    let gathered = hierarchical_allgather(&blocks, &node_ranges(&[2, 3, 1]));
    assert_eq!(gathered.len(), 6);
    for row in &gathered {
        assert_eq!(row, &blocks);
    }
}
