//! Multi-node cluster scenario: the acceptance suite for hierarchical
//! collectives and two-level planning.
//!
//! * On a scaled 2×4 cluster the hierarchical all-gather must cut ≥20% off
//!   the flat ring crossing the slow inter-node link.
//! * Engine walls must improve monotonically from 1×4 to 2×4 to 4×4 on a
//!   tensor large enough to keep compute on the critical path.
//! * Every cluster-run factor must match the sequential COO oracle — the
//!   hierarchy changes the schedule, never the data.

use amped::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    t.shape()
        .iter()
        .map(|&d| Mat::random(d as usize, rank, &mut rng))
        .collect()
}

#[test]
fn hierarchical_gather_cuts_scaled_2x4_time_by_20_percent() {
    let cluster = ClusterSpec::rtx6000_ada_cluster(2, 4).scaled(1e-3);
    let mut rt = SimRuntime::cluster(cluster);
    // Each GPU contributes 4096 output rows at rank 32 (512 KiB blocks) —
    // the bulk regime where bandwidth, not latency, decides.
    let blocks = vec![4096u64 * 32 * 4; 8];
    let flat = rt.allgather_time(Collective::Ring, &blocks);
    let hier = rt.allgather_time(Collective::HierarchicalRing, &blocks);
    assert!(
        hier <= 0.8 * flat,
        "hierarchical all-gather ({hier:.3e}s) must cut ≥20% off the flat ring \
         ({flat:.3e}s) on the 2×4 cluster"
    );
    // And the flat ring really is inter-node-bound: slower than the same
    // blocks on a single 8-GPU node's P2P ring.
    let mut single = SimRuntime::new(PlatformSpec::rtx6000_ada_node(8).scaled(1e-3));
    let intra = single.allgather_time(Collective::Ring, &blocks);
    assert!(flat > intra, "flat {flat:.3e} vs intra-node {intra:.3e}");
}

/// Builds the cluster engine for a shape: `HierarchicalCcp` planning plus
/// the hierarchical gather, through the unchanged `AmpedEngine`.
fn cluster_engine(t: &SparseTensor, nodes: usize, gpus_per_node: usize) -> AmpedEngine {
    let cluster = ClusterSpec::rtx6000_ada_cluster(nodes, gpus_per_node).scaled(1e-3);
    let planner = HierarchicalCcp::from_cluster(&cluster);
    let cfg = AmpedConfig {
        rank: 32,
        isp_nnz: 2048,
        shard_nnz_budget: 16_384,
        gather: GatherAlgo::Hierarchical,
        ..Default::default()
    };
    AmpedEngine::with_planner(t, Box::new(SimRuntime::cluster(cluster)), cfg, &planner)
        .expect("cluster engine must construct")
}

#[test]
fn cluster_walls_scale_from_1x4_to_2x4_to_4x4() {
    // Compute-heavy, gather-light: 600k nonzeros against a 1500-row output
    // mode keep the elementwise computation on the critical path, which is
    // the regime where adding nodes pays (a gather-bound mode cannot scale
    // past the inter-node link, hierarchical or not).
    let t = GenSpec {
        shape: vec![1500, 500, 500],
        nnz: 600_000,
        skew: vec![0.7, 0.4, 0.0],
        seed: 901,
    }
    .generate();
    let factors = factors_for(&t, 32, 902);
    let mut walls = Vec::new();
    for nodes in [1usize, 2, 4] {
        let mut e = cluster_engine(&t, nodes, 4);
        let (_, timing) = e.mttkrp_mode(0, &factors).unwrap();
        walls.push(timing.wall);
    }
    assert!(walls[1] < walls[0], "2×4 must beat 1×4: {walls:?}");
    assert!(walls[2] < walls[1], "4×4 must beat 2×4: {walls:?}");
}

#[test]
fn hierarchical_gather_beats_flat_ring_inside_the_engine() {
    // Same cluster, same plan, only the collective differs: the mode wall
    // under the hierarchical gather must undercut the flat ring once blocks
    // cross the inter-node link.
    let t = GenSpec {
        shape: vec![20_000, 400, 400],
        nnz: 150_000,
        skew: vec![0.6, 0.3, 0.0],
        seed: 903,
    }
    .generate();
    let factors = factors_for(&t, 32, 904);
    let cluster = ClusterSpec::rtx6000_ada_cluster(2, 4).scaled(1e-3);
    let planner = HierarchicalCcp::from_cluster(&cluster);
    let cfg = AmpedConfig {
        rank: 32,
        isp_nnz: 2048,
        shard_nnz_budget: 16_384,
        ..Default::default()
    };
    let mut flat = AmpedEngine::with_planner(
        &t,
        Box::new(SimRuntime::cluster(cluster.clone())),
        AmpedConfig {
            gather: GatherAlgo::Ring,
            ..cfg.clone()
        },
        &planner,
    )
    .unwrap();
    let mut hier = AmpedEngine::with_planner(
        &t,
        Box::new(SimRuntime::cluster(cluster)),
        AmpedConfig {
            gather: GatherAlgo::Hierarchical,
            ..cfg
        },
        &planner,
    )
    .unwrap();
    let (_, t_flat) = flat.mttkrp_mode(0, &factors).unwrap();
    let (_, t_hier) = hier.mttkrp_mode(0, &factors).unwrap();
    assert!(
        t_hier.wall < t_flat.wall,
        "hierarchical gather wall {:.3e} must beat flat ring wall {:.3e}",
        t_hier.wall,
        t_flat.wall
    );
    // Identical plans and kernels: compute buckets agree exactly.
    for (a, b) in t_hier.per_gpu.iter().zip(&t_flat.per_gpu) {
        assert_eq!(a.compute, b.compute);
    }
}

#[test]
fn cluster_factors_match_the_sequential_coo_oracle() {
    // Single-block grids (isp_nnz ≥ shard budget) keep the f32 accumulation
    // order deterministic per shard; the cluster run must then agree with
    // the sequential COO oracle to 1e-6.
    let t = GenSpec {
        shape: vec![600, 220, 180],
        nnz: 4000,
        skew: vec![0.5, 0.2, 0.0],
        seed: 905,
    }
    .generate();
    let factors = factors_for(&t, 16, 906);
    let cluster = ClusterSpec::rtx6000_ada_cluster(2, 2).scaled(1e-3);
    let planner = HierarchicalCcp::from_cluster(&cluster);
    let cfg = AmpedConfig {
        rank: 16,
        isp_nnz: 1024,
        shard_nnz_budget: 1024,
        gather: GatherAlgo::Hierarchical,
        ..Default::default()
    };
    let mut e =
        AmpedEngine::with_planner(&t, Box::new(SimRuntime::cluster(cluster)), cfg, &planner)
            .unwrap();
    for d in 0..t.order() {
        let (out, timing) = e.mttkrp_mode(d, &factors).unwrap();
        let want = mttkrp_ref(&t, &factors, d);
        assert!(
            out.approx_eq(&want, 1e-6, 1e-6),
            "mode {d}: cluster factors must match the COO oracle to 1e-6, max diff {}",
            out.max_abs_diff(&want)
        );
        assert_eq!(timing.per_gpu.len(), 4);
    }
}

#[test]
fn ooc_engine_runs_on_a_cluster_runtime() {
    // The out-of-core engine also executes a cluster plan unchanged: chunks
    // scatter to per-node hosts, factors still match the oracle.
    let t = GenSpec {
        shape: vec![400, 150, 150],
        nnz: 20_000,
        skew: vec![0.6, 0.2, 0.0],
        seed: 907,
    }
    .generate();
    let dir = std::env::temp_dir().join("amped_cluster_scaling");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cluster.tnsb");
    write_tnsb(&t, &path, 2048).unwrap();
    let cluster = ClusterSpec::rtx6000_ada_cluster(2, 2).scaled(1e-3);
    let planner = HierarchicalCcp::from_cluster(&cluster);
    let cfg = AmpedConfig {
        rank: 16,
        isp_nnz: 1024,
        shard_nnz_budget: 2048,
        gather: GatherAlgo::Hierarchical,
        ..Default::default()
    };
    let budget = 2048 * (t.elem_bytes() + t.order() as u64 * 4) * 2;
    let factors = factors_for(&t, 16, 908);
    let mut e = OocEngine::with_planner(
        &path,
        Box::new(SimRuntime::cluster(cluster)),
        cfg,
        budget,
        &planner,
    )
    .unwrap();
    let (out, timing) = OocEngine::mttkrp_mode(&mut e, 0, &factors).unwrap();
    assert!(out.approx_eq(&mttkrp_ref(&t, &factors, 0), 1e-3, 1e-4));
    assert!(timing.wall > 0.0);
    std::fs::remove_file(path).ok();
}

#[test]
fn hierarchical_plan_keeps_node_slices_contiguous() {
    // The property the cheap inter-node exchange rests on: every node's
    // GPUs own one contiguous run of the output-index space.
    let t = GenSpec::uniform(vec![3000, 200, 200], 50_000, 909).generate();
    let cluster = ClusterSpec::rtx6000_ada_cluster(2, 4);
    let planner = HierarchicalCcp::from_cluster(&cluster);
    let q = PlatformCostQuery::new(
        &cluster.flatten(),
        WorkloadProfile {
            order: 3,
            rank: 32,
            elem_bytes: t.elem_bytes(),
            isp_nnz: 2048,
        },
    );
    let stats = PlanStats {
        nnz: t.nnz() as u64,
    };
    for d in 0..t.order() {
        let hist = t.mode_hist(d);
        let a = planner.plan_mode(d, &hist, &stats, &q).unwrap();
        a.validate(t.dim(d) as u64).unwrap();
        // Node slices: GPUs 0–3 then 4–7, each contiguous by construction;
        // both nodes carry real work on a uniform histogram.
        let loads = a.loads(&hist);
        let node0: u64 = loads[..4].iter().sum();
        let node1: u64 = loads[4..].iter().sum();
        assert!(node0 > 0 && node1 > 0, "mode {d}: {loads:?}");
    }
}
