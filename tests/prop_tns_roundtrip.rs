//! Property test: `write_tns` → `read_tns` round-trips arbitrary small
//! tensors exactly — dims, coords, and values.
//!
//! The `.tns` text format carries no shape header (the reader infers dims
//! from the per-mode maximum coordinate), so the generated tensors are
//! shrunk to their occupied bounding box first; within that contract the
//! round trip must be bit-exact: Rust's float formatting prints the shortest
//! string that parses back to the same `f32`.

use amped::prelude::*;
use amped::tensor::io::{read_tns, write_tns};
use proptest::prelude::*;

/// Rebuilds `t` with dims tightened to the occupied bounding box.
fn tighten(t: &SparseTensor) -> SparseTensor {
    let shape: Vec<Idx> = (0..t.order())
        .map(|m| (0..t.nnz()).map(|e| t.idx(e, m)).max().unwrap() + 1)
        .collect();
    SparseTensor::from_parts(shape, t.indices_flat().to_vec(), t.values().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn tns_round_trip_is_exact_3mode(
        d0 in 1u32..300,
        d1 in 1u32..50,
        d2 in 1u32..50,
        nnz in 1usize..300,
        seed in 0u64..10_000,
    ) {
        let t = tighten(&GenSpec::uniform(vec![d0, d1, d2], nnz, seed).generate());
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(buf.as_slice()).unwrap();
        prop_assert_eq!(back, t); // shape + coords + values, exactly
    }

    #[test]
    fn tns_round_trip_is_exact_any_order(
        order in 1usize..5,
        dim in 1u32..60,
        nnz in 1usize..200,
        seed in 0u64..10_000,
    ) {
        let t = tighten(&GenSpec::uniform(vec![dim; order], nnz, seed).generate());
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(buf.as_slice()).unwrap();
        prop_assert_eq!(back, t);
    }
}
