//! Property tests: every baseline format is a lossless re-encoding of the
//! COO tensor, and its MTTKRP kernel agrees with the reference.

use amped::formats::{CsfTensor, HicooTensor, LinTensor};
use amped::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn coord_multiset(t: &SparseTensor) -> Vec<(Vec<Idx>, Val)> {
    let mut v: Vec<(Vec<Idx>, Val)> = t.iter().map(|e| (e.coords.to_vec(), e.val)).collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn lin_round_trip(
        d0 in 1u32..5000,
        d1 in 1u32..300,
        d2 in 1u32..300,
        nnz in 1usize..400,
        block in 1usize..64,
        seed in 0u64..10_000,
    ) {
        let t = GenSpec::uniform(vec![d0, d1, d2], nnz, seed).generate();
        let lt = LinTensor::build(&t, block);
        let mut back: Vec<(Vec<Idx>, Val)> = (0..lt.blocks().len())
            .flat_map(|b| lt.block_iter(b).collect::<Vec<_>>())
            .collect();
        back.sort_by(|a, b| a.0.cmp(&b.0));
        prop_assert_eq!(coord_multiset(&t), back);
    }

    #[test]
    fn hicoo_round_trip(
        d0 in 1u32..2000,
        d1 in 1u32..2000,
        nnz in 1usize..400,
        bits in 1u32..9,
        seed in 0u64..10_000,
    ) {
        let t = GenSpec::uniform(vec![d0, d1], nnz, seed).generate();
        let h = HicooTensor::build(&t, bits);
        let mut back: Vec<(Vec<Idx>, Val)> = (0..h.num_blocks())
            .flat_map(|b| h.block_iter(b).collect::<Vec<_>>())
            .collect();
        back.sort_by(|a, b| a.0.cmp(&b.0));
        prop_assert_eq!(coord_multiset(&t), back);
    }

    #[test]
    fn csf_mttkrp_agrees_with_reference(
        d0 in 2u32..40,
        d1 in 2u32..40,
        d2 in 2u32..40,
        nnz in 1usize..300,
        mode in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let t = GenSpec::uniform(vec![d0, d1, d2], nnz, seed).generate();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC5F);
        let fs: Vec<Mat> =
            t.shape().iter().map(|&d| Mat::random(d as usize, 6, &mut rng)).collect();
        let csf = CsfTensor::build(&t, &CsfTensor::order_for_output(&t, mode));
        let mut out = Mat::zeros(t.dim(mode) as usize, 6);
        csf.mttkrp_root(&fs, &mut out);
        let want = mttkrp_ref(&t, &fs, mode);
        prop_assert!(
            out.approx_eq(&want, 1e-3, 1e-4),
            "mode {mode}: max diff {}",
            out.max_abs_diff(&want)
        );
    }

    #[test]
    fn format_bytes_accounting_is_consistent(
        nnz in 1usize..300,
        seed in 0u64..10_000,
    ) {
        let t = GenSpec::uniform(vec![100, 100, 100], nnz, seed).generate();
        let lt = LinTensor::build(&t, 64);
        let block_sum: u64 = (0..lt.blocks().len()).map(|b| lt.block_bytes(b)).sum();
        prop_assert_eq!(block_sum, lt.bytes());
        let h = HicooTensor::build(&t, 4);
        let elems: usize = (0..h.num_blocks()).map(|b| h.block_nnz(b)).sum();
        prop_assert_eq!(elems, t.nnz());
        let csf = CsfTensor::build(&t, &[0, 1, 2]);
        let leaves: usize = csf.root_leaf_counts().iter().sum();
        prop_assert_eq!(leaves, t.nnz());
    }
}
