//! Simulator-level invariants: time accounting, memory accounting, and cost
//! monotonicity properties that every experiment implicitly relies on.

use amped::prelude::*;
use amped::sim::costmodel::{BlockStats, CostModel};
use amped::sim::GpuSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    t.shape()
        .iter()
        .map(|&d| Mat::random(d as usize, rank, &mut rng))
        .collect()
}

#[test]
fn breakdown_components_are_nonnegative_and_consistent() {
    let t = GenSpec {
        shape: vec![500, 300, 300],
        nnz: 30_000,
        skew: vec![1.0, 0.5, 0.0],
        seed: 601,
    }
    .generate();
    let factors = factors_for(&t, 16, 602);
    let run = AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(3).scaled(1e-3), 16)
        .execute(&t, &factors)
        .unwrap();
    for (g, b) in run.report.per_gpu.iter().enumerate() {
        assert!(
            b.compute >= 0.0 && b.h2d >= 0.0 && b.p2p >= 0.0 && b.idle >= 0.0,
            "gpu{g}"
        );
        assert!(b.total() >= b.communication(), "gpu{g}");
    }
    // Per-mode walls sum to the total.
    let sum: f64 = run.report.per_mode.iter().sum();
    assert!((sum - run.report.total_time).abs() < 1e-12);
    // Fig. 7 fractions form a distribution.
    let (c, h, p) = run.report.fig7_fractions();
    assert!((c + h + p - 1.0).abs() < 1e-9);
    assert!(c > 0.0 && h > 0.0 && p >= 0.0);
}

#[test]
fn simulated_time_scales_with_work() {
    // Twice the nonzeros must not run faster (same shapes, same platform).
    let mk = |nnz: usize| {
        let t = GenSpec::uniform(vec![2000, 500, 500], nnz, 603).generate();
        let factors = factors_for(&t, 32, 604);
        AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(2).scaled(1e-3), 32)
            .execute(&t, &factors)
            .unwrap()
            .report
            .total_time
    };
    let small = mk(20_000);
    let large = mk(80_000);
    assert!(
        large > 1.5 * small,
        "4× the nonzeros should take clearly longer: {small:.3e} vs {large:.3e}"
    );
}

#[test]
fn block_time_monotone_in_concurrency_pressure() {
    // More blocks competing for bandwidth → each block slower (or equal).
    let m = CostModel::default();
    let g = GpuSpec::rtx6000_ada();
    let s = BlockStats {
        nnz: 8192,
        distinct_out: 2000,
        max_out_run: 8,
        distinct_in_total: 9000,
        dram_factor_reads: 9000,
        sorted_by_output: true,
        order: 3,
        rank: 32,
        elem_bytes: 16,
    };
    let mut prev = 0.0;
    for conc in [1usize, 2, 8, 32, 142, 500] {
        let t = m.block_time(&g, &s, 1.0, conc);
        assert!(t >= prev, "block time must not drop with more pressure");
        prev = t;
    }
    // Beyond the SM count, pressure saturates.
    assert_eq!(
        m.block_time(&g, &s, 1.0, 142),
        m.block_time(&g, &s, 1.0, 10_000)
    );
}

#[test]
fn dram_factor_reads_monotone_in_cache_size() {
    use amped::sim::costmodel::dram_factor_reads;
    let counts: Vec<u32> = (1..200u32).collect();
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    let mut prev = u64::MAX;
    for cache in [0usize, 1, 10, 50, 199, 1000] {
        let reads = dram_factor_reads(counts.clone(), cache);
        assert!(reads <= prev, "bigger cache must not increase DRAM reads");
        assert!(reads <= total, "reads cannot exceed accesses");
        prev = reads;
    }
    // Infinite cache: exactly one fill per distinct row.
    assert_eq!(
        dram_factor_reads(counts.clone(), usize::MAX),
        counts.len() as u64
    );
    // No cache: every access misses.
    assert_eq!(dram_factor_reads(counts, 0), total);
}

#[test]
fn gpu_memory_peaks_are_reported_and_bounded() {
    let t = Dataset::Twitch.generate(1e-4);
    let factors = factors_for(&t, 32, 605);
    let spec = PlatformSpec::rtx6000_ada_node(4).scaled(1e-4);
    let cap = spec.gpus[0].mem_bytes;
    let run = AmpedSystem::with_rank(spec, 32)
        .execute(&t, &factors)
        .unwrap();
    assert!(run.gpu_mem_peak > 0);
    assert!(
        run.gpu_mem_peak <= cap,
        "peak {} exceeds capacity {cap}",
        run.gpu_mem_peak
    );
}

#[test]
fn preprocessing_wall_time_is_measured() {
    let t = Dataset::Amazon.generate(5e-5);
    let factors = factors_for(&t, 32, 606);
    let run = AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(2).scaled(5e-5), 32)
        .execute(&t, &factors)
        .unwrap();
    assert!(
        run.report.preprocess_wall > 0.0,
        "real preprocessing time must be recorded (Fig. 10)"
    );
}

#[test]
fn equal_nnz_merge_costs_appear_only_there() {
    let t = GenSpec::uniform(vec![400, 200, 200], 20_000, 607).generate();
    let factors = factors_for(&t, 16, 608);
    let p = PlatformSpec::rtx6000_ada_node(4).scaled(1e-3);
    let amped = AmpedSystem::with_rank(p.clone(), 16)
        .execute(&t, &factors)
        .unwrap();
    let equal = EqualNnzSystem::new(p).execute(&t, &factors).unwrap();
    let a = amped.report.aggregate();
    let e = equal.report.aggregate();
    assert_eq!(a.d2h, 0.0, "AMPED never copies results back to the host");
    assert_eq!(a.host, 0.0, "AMPED never computes on the host");
    assert!(
        e.d2h > 0.0 && e.host > 0.0,
        "equal-nnz must pay the merge round trip"
    );
}
