//! Property test: `chains_on_chains` is an *exact* contiguous-partition
//! bottleneck minimizer, checked against brute-force dynamic programming on
//! small random weight vectors; `hetero_chains` achieves the optimal
//! bottleneck *time* to bisection tolerance on heterogeneous device speeds.

use amped::partition::ccp::max_load;
use amped::partition::chains_on_chains;
use amped::plan::hetero_chains;
use proptest::prelude::*;

/// Optimal contiguous max-load by DP: `opt[k][i]` = minimal bottleneck
/// splitting the first `i` weights into `k` contiguous (possibly empty)
/// parts.
#[allow(clippy::needless_range_loop)] // index loops are the clearest DP form
fn brute_force_optimal_load(weights: &[u64], m: usize) -> u64 {
    let n = weights.len();
    let mut prefix = vec![0u64; n + 1];
    for (i, &w) in weights.iter().enumerate() {
        prefix[i + 1] = prefix[i] + w;
    }
    let sum = |a: usize, b: usize| prefix[b] - prefix[a];
    // k = 1: one part takes everything up to i.
    let mut opt: Vec<u64> = (0..=n).map(|i| sum(0, i)).collect();
    for _k in 2..=m {
        let mut next = vec![u64::MAX; n + 1];
        for i in 0..=n {
            for j in 0..=i {
                next[i] = next[i].min(opt[j].max(sum(j, i)));
            }
        }
        opt = next;
    }
    opt[n]
}

/// Optimal contiguous bottleneck *time* with per-device speeds (device
/// order fixed, as in `hetero_chains`).
#[allow(clippy::needless_range_loop)] // index loops are the clearest DP form
fn brute_force_optimal_time(weights: &[u64], speeds: &[f64]) -> f64 {
    let n = weights.len();
    let mut prefix = vec![0u64; n + 1];
    for (i, &w) in weights.iter().enumerate() {
        prefix[i + 1] = prefix[i] + w;
    }
    let sum = |a: usize, b: usize| (prefix[b] - prefix[a]) as f64;
    let mut opt: Vec<f64> = (0..=n).map(|i| sum(0, i) / speeds[0]).collect();
    for &s in &speeds[1..] {
        let mut next = vec![f64::INFINITY; n + 1];
        for i in 0..=n {
            for j in 0..=i {
                next[i] = next[i].min(opt[j].max(sum(j, i) / s));
            }
        }
        opt = next;
    }
    opt[n]
}

#[test]
fn known_instances_match_brute_force() {
    for (w, m) in [
        (vec![2u64, 3, 4, 5, 6], 2usize),
        (vec![10, 1, 1, 1, 1, 1, 10], 3),
        (vec![0, 0, 7, 0, 0], 4),
        (vec![5], 3),
    ] {
        let r = chains_on_chains(&w, m);
        assert_eq!(
            max_load(&w, &r),
            brute_force_optimal_load(&w, m),
            "weights {w:?}, m={m}"
        );
    }
}

proptest! {
    /// CCP must achieve exactly the brute-force-optimal bottleneck.
    #[test]
    fn prop_ccp_matches_brute_force_optimum(
        w in proptest::collection::vec(0u64..40, 1..14),
        m in 1usize..5,
    ) {
        let ranges = chains_on_chains(&w, m);
        let achieved = max_load(&w, &ranges);
        let optimal = brute_force_optimal_load(&w, m);
        prop_assert_eq!(achieved, optimal, "weights {:?}, m={}", w, m);
    }

    /// Heterogeneous CCP must achieve the optimal bottleneck time within
    /// the bisection tolerance.
    #[test]
    fn prop_hetero_ccp_matches_brute_force_time(
        w in proptest::collection::vec(0u64..40, 1..12),
        speeds in proptest::collection::vec(0.25f64..4.0, 1..4),
    ) {
        let ranges = hetero_chains(&w, &speeds);
        let achieved = ranges
            .iter()
            .zip(&speeds)
            .map(|(r, &s)| {
                w[r.start as usize..r.end as usize].iter().sum::<u64>() as f64 / s
            })
            .fold(0.0f64, f64::max);
        let optimal = brute_force_optimal_time(&w, &speeds);
        prop_assert!(
            achieved <= optimal * (1.0 + 1e-6) + 1e-12,
            "achieved {} vs optimal {} (weights {:?}, speeds {:?})",
            achieved, optimal, w, speeds
        );
    }
}
