//! Planner-equivalence suite: the refactored nnz-weighted planners must
//! reproduce the *pre-refactor* assignments exactly. The literals below were
//! captured from `ModePlan::build` / `EqualPlan::build` on the tree before
//! the `amped-plan` extraction (PR 4) — any drift in the CCP wiring, the
//! trait plumbing, or the range materialization trips these assertions.

use amped::prelude::*;
use std::ops::Range;

struct Pinned {
    shape: Vec<u32>,
    nnz: usize,
    skew: Vec<f64>,
    seed: u64,
    gpus: usize,
    /// Pre-refactor `ModePlan::build(t, d, gpus, 512).device_ranges`.
    ccp_ranges: Vec<Vec<Range<u32>>>,
    /// Pre-refactor `ModePlan::build(..).gpu_loads()`.
    ccp_loads: Vec<Vec<u64>>,
    /// Pre-refactor `EqualPlan::build(t, d, gpus)` chunk element ranges
    /// (identical for every mode) and per-mode conflicted-row counts.
    equal_ranges: Vec<Range<usize>>,
    equal_conflicted: Vec<u64>,
}

fn pinned_cases() -> Vec<Pinned> {
    vec![
        Pinned {
            shape: vec![64, 40, 50],
            nnz: 3000,
            skew: vec![0.8, 0.0, 0.0],
            seed: 7,
            gpus: 4,
            ccp_ranges: vec![
                vec![0..19, 19..38, 38..44, 44..64],
                vec![0..10, 10..20, 20..30, 30..40],
                vec![0..12, 12..24, 24..36, 36..50],
            ],
            ccp_loads: vec![
                vec![758, 751, 777, 714],
                vec![755, 734, 743, 768],
                vec![718, 750, 750, 782],
            ],
            equal_ranges: vec![0..750, 750..1500, 1500..2250, 2250..3000],
            equal_conflicted: vec![64, 40, 50],
        },
        Pinned {
            shape: vec![200, 80, 80],
            nnz: 10_000,
            skew: vec![1.1, 0.3, 0.0],
            seed: 42,
            gpus: 3,
            ccp_ranges: vec![
                vec![0..88, 88..132, 132..200],
                vec![0..25, 25..52, 52..80],
                vec![0..27, 27..53, 53..80],
            ],
            ccp_loads: vec![
                vec![3750, 3738, 2512],
                vec![3332, 3361, 3307],
                vec![3344, 3278, 3378],
            ],
            equal_ranges: vec![0..3334, 3334..6668, 6668..10_000],
            equal_conflicted: vec![200, 80, 80],
        },
        Pinned {
            shape: vec![500, 100, 60],
            nnz: 20_000,
            skew: vec![0.0, 0.0, 0.0],
            seed: 99,
            gpus: 5,
            ccp_ranges: vec![
                vec![0..97, 97..198, 198..298, 298..400, 400..500],
                vec![0..20, 20..40, 40..61, 61..81, 81..100],
                vec![0..12, 12..24, 24..36, 36..48, 48..60],
            ],
            ccp_loads: vec![
                vec![4005, 3996, 4006, 3988, 4005],
                vec![3992, 4055, 4064, 3968, 3921],
                vec![3991, 3915, 4060, 4017, 4017],
            ],
            equal_ranges: vec![
                0..4000,
                4000..8000,
                8000..12_000,
                12_000..16_000,
                16_000..20_000,
            ],
            equal_conflicted: vec![500, 100, 60],
        },
    ]
}

fn tensor_of(p: &Pinned) -> SparseTensor {
    GenSpec {
        shape: p.shape.clone(),
        nnz: p.nnz,
        skew: p.skew.clone(),
        seed: p.seed,
    }
    .generate()
}

#[test]
fn nnz_ccp_planner_matches_pre_refactor_assignments() {
    for p in pinned_cases() {
        let t = tensor_of(&p);
        let stats = PlanStats { nnz: p.nnz as u64 };
        let cost = UniformCost::new(p.gpus);
        for d in 0..t.order() {
            let hist = t.mode_hist(d);
            let a = NnzCcp.plan_mode(d, &hist, &stats, &cost).unwrap();
            assert_eq!(
                a.index_ranges(),
                p.ccp_ranges[d],
                "shape {:?} mode {d}: planner ranges diverged from pre-refactor capture",
                p.shape
            );
            assert_eq!(
                a.loads(&hist),
                p.ccp_loads[d],
                "shape {:?} mode {d}",
                p.shape
            );
        }
    }
}

#[test]
fn mode_plan_build_matches_pre_refactor_assignments() {
    // The materialized plan (which now routes through `build_with_ranges`)
    // must carry the same device ranges and loads as before the refactor.
    for p in pinned_cases() {
        let t = tensor_of(&p);
        for d in 0..t.order() {
            let mp = ModePlan::build(&t, d, p.gpus, 512);
            assert_eq!(
                mp.device_ranges, p.ccp_ranges[d],
                "shape {:?} mode {d}",
                p.shape
            );
            assert_eq!(
                mp.gpu_loads(),
                p.ccp_loads[d],
                "shape {:?} mode {d}",
                p.shape
            );
        }
    }
}

#[test]
fn equal_split_planner_matches_pre_refactor_chunks() {
    for p in pinned_cases() {
        let t = tensor_of(&p);
        let stats = PlanStats { nnz: p.nnz as u64 };
        let cost = UniformCost::new(p.gpus);
        for d in 0..t.order() {
            let a = EqualSplit.plan_mode(d, &[], &stats, &cost).unwrap();
            assert_eq!(
                a.element_ranges(),
                p.equal_ranges,
                "shape {:?} mode {d}",
                p.shape
            );
            let ep = EqualPlan::build_from_ranges(&t, d, &a.element_ranges());
            assert_eq!(
                ep.conflicted_rows, p.equal_conflicted[d],
                "shape {:?} mode {d}",
                p.shape
            );
            // And the legacy constructor agrees with the planner path.
            let legacy = EqualPlan::build(&t, d, p.gpus);
            assert_eq!(legacy.conflicted_rows, ep.conflicted_rows);
            assert_eq!(legacy.total_touched_rows, ep.total_touched_rows);
        }
    }
}

#[test]
fn engine_with_nnz_planner_equals_default_engine_assignments() {
    // The engine's planner-driven construction with `NnzCcp` must produce
    // the same plan as the default constructor (which now routes through
    // it) — and both must pin to the captured ranges.
    let p = &pinned_cases()[0];
    let t = tensor_of(p);
    let cfg = AmpedConfig {
        rank: 8,
        isp_nnz: 256,
        shard_nnz_budget: 512,
        ..Default::default()
    };
    let spec = PlatformSpec::rtx6000_ada_node(p.gpus).scaled(1e-3);
    let via_default = AmpedEngine::new(&t, spec.clone(), cfg.clone()).unwrap();
    let via_planner =
        AmpedEngine::with_planner(&t, Box::new(SimRuntime::new(spec)), cfg, &NnzCcp).unwrap();
    for d in 0..t.order() {
        assert_eq!(
            via_default.plan().modes[d].device_ranges,
            p.ccp_ranges[d],
            "mode {d}"
        );
        assert_eq!(
            via_default.plan().modes[d].device_ranges,
            via_planner.plan().modes[d].device_ranges
        );
        assert_eq!(
            via_default.plan().modes[d].gpu_loads(),
            via_planner.plan().modes[d].gpu_loads()
        );
    }
}
