//! Qualitative performance-shape assertions from the paper's evaluation,
//! checked on the simulated timing (robust directional claims only; the
//! quantitative tables live in EXPERIMENTS.md).

use amped::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    t.shape()
        .iter()
        .map(|&d| Mat::random(d as usize, rank, &mut rng))
        .collect()
}

#[test]
fn amped_beats_equal_nnz_partitioning() {
    // Fig. 6: the index-aligned partitioning avoids the host merge round
    // trip and must win clearly.
    let t = GenSpec {
        shape: vec![4000, 800, 800],
        nnz: 120_000,
        skew: vec![0.8, 0.5, 0.5],
        seed: 401,
    }
    .generate();
    let factors = factors_for(&t, 32, 402);
    let p4 = PlatformSpec::rtx6000_ada_node(4).scaled(1e-3);
    let a = AmpedSystem::with_rank(p4.clone(), 32)
        .execute(&t, &factors)
        .unwrap();
    let e = EqualNnzSystem::new(p4).execute(&t, &factors).unwrap();
    let speedup = e.report.total_time / a.report.total_time;
    assert!(
        speedup > 1.5,
        "equal-nnz should be clearly slower (paper: 5.3–10.3×), got {speedup:.2}×"
    );
}

#[test]
fn flycoo_beats_amped_on_small_resident_tensor() {
    // Fig. 5 Twitch: when two tensor copies fit on one GPU, FLYCOO skips all
    // host and inter-GPU traffic and wins.
    // Full experiment scale: smaller scales floor the mode sizes, which
    // shrinks exactly the all-gather volume that makes AMPED lose here.
    let t = Dataset::Twitch.generate(1e-3);
    let factors = factors_for(&t, 32, 403);
    let p1 = PlatformSpec::rtx6000_ada_node(1).scaled(1e-3);
    let p4 = PlatformSpec::rtx6000_ada_node(4).scaled(1e-3);
    let a = AmpedSystem::with_rank(p4, 32)
        .execute(&t, &factors)
        .unwrap();
    let f = FlycooSystem::new(p1).execute(&t, &factors).unwrap();
    assert!(
        f.report.total_time < 0.95 * a.report.total_time,
        "FLYCOO should win on a resident tensor (paper: 3.9×): FLYCOO {:.3e}s vs AMPED {:.3e}s",
        f.report.total_time,
        a.report.total_time
    );
}

#[test]
fn amped_multi_gpu_beats_blco_on_large_tensor() {
    // Fig. 5's headline: 4 streaming GPUs beat 1 streaming GPU.
    let t = Dataset::Amazon.generate(1e-4);
    let factors = factors_for(&t, 32, 404);
    let a = AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(4).scaled(1e-4), 32)
        .execute(&t, &factors)
        .unwrap();
    let b = BlcoSystem::new(PlatformSpec::rtx6000_ada_node(1).scaled(1e-4))
        .execute(&t, &factors)
        .unwrap();
    let speedup = b.report.total_time / a.report.total_time;
    assert!(
        speedup > 2.0,
        "AMPED(4) should clearly beat BLCO(1) (paper: 5.1× geomean), got {speedup:.2}×"
    );
}

#[test]
fn scaling_is_monotone_and_sublinear() {
    // Fig. 9: speedup grows with GPU count but stays below linear because of
    // all-gather and per-GPU streaming floors.
    let t = Dataset::Reddit.generate(2e-5);
    let factors = factors_for(&t, 32, 405);
    let mut times = Vec::new();
    for m in 1..=4usize {
        let run = AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(m).scaled(2e-5), 32)
            .execute(&t, &factors)
            .unwrap();
        times.push(run.report.total_time);
    }
    for w in times.windows(2) {
        assert!(w[1] < w[0], "more GPUs must not be slower: {times:?}");
    }
    let s4 = times[0] / times[3];
    assert!(
        s4 > 1.8 && s4 < 4.0,
        "4-GPU speedup should be sublinear but substantial (paper 3.3×), got {s4:.2}×"
    );
}

#[test]
fn compute_load_is_balanced_across_gpus() {
    // Fig. 8: CCP keeps per-GPU elementwise-computation time within a few
    // percent. Patents is the evenest dataset (year mode nearly uniform);
    // skewed datasets show larger percentages at reduced scale because hot
    // ranges get *cheaper* per element (cache reuse), a cost heterogeneity
    // the nnz-balancing partitioner cannot see — see EXPERIMENTS.md.
    let t = Dataset::Patents.generate(1e-4);
    let factors = factors_for(&t, 32, 406);
    let run = AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(4).scaled(1e-4), 32)
        .execute(&t, &factors)
        .unwrap();
    let ov = run.report.compute_overhead_fraction();
    assert!(
        ov < 0.10,
        "compute overhead should be small (paper <1% at full scale), got {:.1}%",
        ov * 100.0
    );
}

#[test]
fn time_breakdown_reconciles_with_wall_time() {
    // The h2d bucket carries only *exposed* transfer time (link actually
    // busy while compute stalls); double-buffer and pipeline slack land in
    // idle. The buckets must still tile the mode wall exactly:
    // compute + h2d + idle + p2p == wall for every GPU, in-core and OOC.
    let t = GenSpec {
        shape: vec![2000, 500, 500],
        nnz: 60_000,
        skew: vec![0.8, 0.4, 0.0],
        seed: 410,
    }
    .generate();
    let factors = factors_for(&t, 32, 411);
    let cfg = AmpedConfig {
        rank: 32,
        isp_nnz: 1024,
        shard_nnz_budget: 4096,
        ..Default::default()
    };
    let check = |timing: &ModeTiming, label: &str| {
        for (g, b) in timing.per_gpu.iter().enumerate() {
            let total = b.compute + b.h2d + b.idle + b.p2p;
            assert!(
                (total - timing.wall).abs() <= 1e-9 * timing.wall.max(1e-30),
                "{label}: GPU {g} buckets ({total:.9e}) must reconcile with wall \
                 ({:.9e}); breakdown {b:?}",
                timing.wall
            );
            assert!(b.h2d >= 0.0 && b.idle >= 0.0);
        }
    };
    let mut e = AmpedEngine::new(
        &t,
        PlatformSpec::rtx6000_ada_node(4).scaled(1e-3),
        cfg.clone(),
    )
    .unwrap();
    for d in 0..t.order() {
        let (_, timing) = e.mttkrp_mode(d, &factors).unwrap();
        check(&timing, "in-core");
    }
    // Heterogeneous spec: stalls differ per GPU, buckets must still tile.
    let mut h = AmpedEngine::new(
        &t,
        PlatformSpec::hetero_2fast_2slow().scaled(1e-3),
        cfg.clone(),
    )
    .unwrap();
    let (_, timing) = h.mttkrp_mode(0, &factors).unwrap();
    check(&timing, "in-core hetero");
    // Out of core: the scatter pipeline gates all GPUs globally, which is
    // exactly where stall time used to masquerade as transfer time.
    let dir = std::env::temp_dir().join("amped_perf_shape");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("reconcile.tnsb");
    write_tnsb(&t, &path, 4096).unwrap();
    let budget = 4096 * (t.elem_bytes() + t.order() as u64 * 4) * 2;
    let mut ooc = OocEngine::open(
        &path,
        PlatformSpec::rtx6000_ada_node(4).scaled(1e-3),
        cfg,
        budget,
    )
    .unwrap();
    for d in 0..t.order() {
        let (_, timing) = OocEngine::mttkrp_mode(&mut ooc, d, &factors).unwrap();
        check(&timing, "out-of-core");
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn communication_fraction_grows_with_mode_sizes() {
    // Fig. 7's mechanism: larger index spaces → more all-gather bytes per
    // unit of compute.
    let factors_of = |t: &SparseTensor| factors_for(t, 32, 407);
    let small_modes = GenSpec::uniform(vec![500, 500, 500], 100_000, 408).generate();
    let large_modes = GenSpec::uniform(vec![40_000, 40_000, 40_000], 100_000, 409).generate();
    let frac = |t: &SparseTensor| {
        let run = AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(4).scaled(1e-3), 32)
            .execute(t, &factors_of(t))
            .unwrap();
        let (_, h, p) = run.report.fig7_fractions();
        h + p
    };
    let f_small = frac(&small_modes);
    let f_large = frac(&large_modes);
    assert!(
        f_large > f_small,
        "larger index spaces must raise the communication share: {f_small:.3} vs {f_large:.3}"
    );
}
