//! Qualitative performance-shape assertions from the paper's evaluation,
//! checked on the simulated timing (robust directional claims only; the
//! quantitative tables live in EXPERIMENTS.md).

use amped::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    t.shape()
        .iter()
        .map(|&d| Mat::random(d as usize, rank, &mut rng))
        .collect()
}

#[test]
fn amped_beats_equal_nnz_partitioning() {
    // Fig. 6: the index-aligned partitioning avoids the host merge round
    // trip and must win clearly.
    let t = GenSpec {
        shape: vec![4000, 800, 800],
        nnz: 120_000,
        skew: vec![0.8, 0.5, 0.5],
        seed: 401,
    }
    .generate();
    let factors = factors_for(&t, 32, 402);
    let p4 = PlatformSpec::rtx6000_ada_node(4).scaled(1e-3);
    let a = AmpedSystem::with_rank(p4.clone(), 32)
        .execute(&t, &factors)
        .unwrap();
    let e = EqualNnzSystem::new(p4).execute(&t, &factors).unwrap();
    let speedup = e.report.total_time / a.report.total_time;
    assert!(
        speedup > 1.5,
        "equal-nnz should be clearly slower (paper: 5.3–10.3×), got {speedup:.2}×"
    );
}

#[test]
fn flycoo_beats_amped_on_small_resident_tensor() {
    // Fig. 5 Twitch: when two tensor copies fit on one GPU, FLYCOO skips all
    // host and inter-GPU traffic and wins.
    // Full experiment scale: smaller scales floor the mode sizes, which
    // shrinks exactly the all-gather volume that makes AMPED lose here.
    let t = Dataset::Twitch.generate(1e-3);
    let factors = factors_for(&t, 32, 403);
    let p1 = PlatformSpec::rtx6000_ada_node(1).scaled(1e-3);
    let p4 = PlatformSpec::rtx6000_ada_node(4).scaled(1e-3);
    let a = AmpedSystem::with_rank(p4, 32)
        .execute(&t, &factors)
        .unwrap();
    let f = FlycooSystem::new(p1).execute(&t, &factors).unwrap();
    assert!(
        f.report.total_time < 0.95 * a.report.total_time,
        "FLYCOO should win on a resident tensor (paper: 3.9×): FLYCOO {:.3e}s vs AMPED {:.3e}s",
        f.report.total_time,
        a.report.total_time
    );
}

#[test]
fn amped_multi_gpu_beats_blco_on_large_tensor() {
    // Fig. 5's headline: 4 streaming GPUs beat 1 streaming GPU.
    let t = Dataset::Amazon.generate(1e-4);
    let factors = factors_for(&t, 32, 404);
    let a = AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(4).scaled(1e-4), 32)
        .execute(&t, &factors)
        .unwrap();
    let b = BlcoSystem::new(PlatformSpec::rtx6000_ada_node(1).scaled(1e-4))
        .execute(&t, &factors)
        .unwrap();
    let speedup = b.report.total_time / a.report.total_time;
    assert!(
        speedup > 2.0,
        "AMPED(4) should clearly beat BLCO(1) (paper: 5.1× geomean), got {speedup:.2}×"
    );
}

#[test]
fn scaling_is_monotone_and_sublinear() {
    // Fig. 9: speedup grows with GPU count but stays below linear because of
    // all-gather and per-GPU streaming floors.
    let t = Dataset::Reddit.generate(2e-5);
    let factors = factors_for(&t, 32, 405);
    let mut times = Vec::new();
    for m in 1..=4usize {
        let run = AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(m).scaled(2e-5), 32)
            .execute(&t, &factors)
            .unwrap();
        times.push(run.report.total_time);
    }
    for w in times.windows(2) {
        assert!(w[1] < w[0], "more GPUs must not be slower: {times:?}");
    }
    let s4 = times[0] / times[3];
    assert!(
        s4 > 1.8 && s4 < 4.0,
        "4-GPU speedup should be sublinear but substantial (paper 3.3×), got {s4:.2}×"
    );
}

#[test]
fn compute_load_is_balanced_across_gpus() {
    // Fig. 8: CCP keeps per-GPU elementwise-computation time within a few
    // percent. Patents is the evenest dataset (year mode nearly uniform);
    // skewed datasets show larger percentages at reduced scale because hot
    // ranges get *cheaper* per element (cache reuse), a cost heterogeneity
    // the nnz-balancing partitioner cannot see — see EXPERIMENTS.md.
    let t = Dataset::Patents.generate(1e-4);
    let factors = factors_for(&t, 32, 406);
    let run = AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(4).scaled(1e-4), 32)
        .execute(&t, &factors)
        .unwrap();
    let ov = run.report.compute_overhead_fraction();
    assert!(
        ov < 0.10,
        "compute overhead should be small (paper <1% at full scale), got {:.1}%",
        ov * 100.0
    );
}

#[test]
fn communication_fraction_grows_with_mode_sizes() {
    // Fig. 7's mechanism: larger index spaces → more all-gather bytes per
    // unit of compute.
    let factors_of = |t: &SparseTensor| factors_for(t, 32, 407);
    let small_modes = GenSpec::uniform(vec![500, 500, 500], 100_000, 408).generate();
    let large_modes = GenSpec::uniform(vec![40_000, 40_000, 40_000], 100_000, 409).generate();
    let frac = |t: &SparseTensor| {
        let run = AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(4).scaled(1e-3), 32)
            .execute(t, &factors_of(t))
            .unwrap();
        let (_, h, p) = run.report.fig7_fractions();
        h + p
    };
    let f_small = frac(&small_modes);
    let f_large = frac(&large_modes);
    assert!(
        f_large > f_small,
        "larger index spaces must raise the communication share: {f_small:.3} vs {f_large:.3}"
    );
}
