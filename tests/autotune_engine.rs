//! End-to-end autotuning: a tuned engine computes bit-identical results to
//! a default one (every searched knob is numerics-transparent), the first
//! construction searches exactly once, a warm persistent cache performs no
//! search at all, and the out-of-core constructor tunes from the `.tnsb`
//! footer statistics alone.

use amped::prelude::*;
use amped_stream::write_tnsb;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tensor() -> SparseTensor {
    GenSpec {
        shape: vec![80, 60, 50],
        nnz: 5000,
        skew: vec![0.7, 0.3, 0.0],
        seed: 71,
    }
    .generate()
}

fn cfg() -> AmpedConfig {
    AmpedConfig {
        rank: 16,
        isp_nnz: 256,
        shard_nnz_budget: 2048,
        ..AmpedConfig::default()
    }
}

fn factors(t: &SparseTensor, r: usize, seed: u64) -> Vec<Mat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    t.shape()
        .iter()
        .map(|&d| Mat::random(d as usize, r, &mut rng))
        .collect()
}

fn spec() -> PlatformSpec {
    PlatformSpec::rtx6000_ada_node(2).scaled(1e-3)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("amped_autotune_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn tuned_engine_is_bit_identical_and_searches_once() {
    let t = tensor();
    let fs = factors(&t, 16, 72);

    let mut base = AmpedEngine::new(&t, spec(), cfg()).unwrap();

    let reg = MetricsRegistry::new();
    let rt = SimRuntime::new(spec()).with_metrics(reg.clone());
    let mut tuner = Autotuner::in_memory();
    let mut tuned = AmpedEngine::with_tuner(&t, Box::new(rt), cfg(), &mut tuner).unwrap();
    assert_eq!(reg.counter_value("tune_searches", &[]), 1);
    assert_eq!(reg.counter_value("tune_cache_hits", &[]), 0);

    for d in 0..t.order() {
        let (want, _) = base.mttkrp_mode(d, &fs).unwrap();
        let (got, _) = tuned.mttkrp_mode(d, &fs).unwrap();
        assert_eq!(
            want.as_slice(),
            got.as_slice(),
            "mode {d}: tuned parameters changed the numerics"
        );
    }
}

#[test]
fn warm_persistent_cache_performs_no_search() {
    let path = tmp("warm_engine.json");
    let _ = std::fs::remove_file(&path);
    let t = tensor();

    // Cold: search + persist.
    let reg_cold = MetricsRegistry::new();
    let rt = SimRuntime::new(spec()).with_metrics(reg_cold.clone());
    let mut cold_tuner = Autotuner::with_cache(&path);
    let cold = AmpedEngine::with_tuner(&t, Box::new(rt), cfg(), &mut cold_tuner).unwrap();
    assert_eq!(reg_cold.counter_value("tune_searches", &[]), 1);

    // Warm: a fresh tuner over the persisted file resolves the same
    // parameters with zero searches.
    let reg_warm = MetricsRegistry::new();
    let rt = SimRuntime::new(spec()).with_metrics(reg_warm.clone());
    let mut warm_tuner = Autotuner::with_cache(&path);
    let warm = AmpedEngine::with_tuner(&t, Box::new(rt), cfg(), &mut warm_tuner).unwrap();
    assert_eq!(
        reg_warm.counter_value("tune_searches", &[]),
        0,
        "warm run must not search"
    );
    assert_eq!(reg_warm.counter_value("tune_cache_hits", &[]), 1);
    assert_eq!(
        cold.tune(),
        warm.tune(),
        "cache returned a different winner"
    );

    std::fs::remove_file(path).ok();
}

#[test]
fn ooc_tuned_matches_untuned_and_tunes_from_footer_stats() {
    let t = tensor();
    let path = tmp("tuned.tnsb");
    write_tnsb(&t, &path, 512).unwrap();
    let budget = 512u64 * (t.elem_bytes() + t.order() as u64 * 4) * 2;
    let fs = factors(&t, 16, 73);

    let mut base = OocEngine::open(&path, spec(), cfg(), budget).unwrap();

    let reg = MetricsRegistry::new();
    let rt = SimRuntime::new(spec()).with_metrics(reg.clone());
    let mut tuner = Autotuner::in_memory();
    let mut tuned = OocEngine::with_tuner(&path, Box::new(rt), cfg(), budget, &mut tuner).unwrap();
    assert_eq!(reg.counter_value("tune_searches", &[]), 1);

    for d in 0..t.order() {
        let (want, _) = base.mttkrp_mode(d, &fs).unwrap();
        let (got, _) = tuned.mttkrp_mode(d, &fs).unwrap();
        assert_eq!(
            want.as_slice(),
            got.as_slice(),
            "mode {d}: tuned OOC parameters changed the numerics"
        );
    }

    std::fs::remove_file(path).ok();
}
