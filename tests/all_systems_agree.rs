//! Cross-crate correctness: every system (AMPED + all baselines) computes
//! the same MTTKRP-along-all-modes chain as the sequential reference.

use amped::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    t.shape()
        .iter()
        .map(|&d| Mat::random(d as usize, rank, &mut rng))
        .collect()
}

/// Algorithm-1 semantics: each mode's MTTKRP output replaces the factor
/// before the next mode (λ-normalized, as every system under test does, to
/// keep chained values within `f32` range).
fn reference_chain(t: &SparseTensor, factors: &[Mat]) -> Vec<Mat> {
    let mut fs = factors.to_vec();
    for d in 0..t.order() {
        fs[d] = mttkrp_ref(t, &fs, d);
        fs[d].normalize_cols();
    }
    fs
}

fn check(run: &SystemRun, want: &[Mat], label: &str) {
    for (d, (got, exp)) in run.factors.iter().zip(want).enumerate() {
        assert!(
            got.approx_eq(exp, 2e-3, 1e-3),
            "{label} mode {d}: max diff {}",
            got.max_abs_diff(exp)
        );
    }
}

#[test]
fn three_mode_tensor_all_systems() {
    let t = GenSpec {
        shape: vec![60, 45, 50],
        nnz: 3000,
        skew: vec![0.8, 0.0, 0.5],
        seed: 301,
    }
    .generate();
    let factors = factors_for(&t, 8, 302);
    let want = reference_chain(&t, &factors);
    let p1 = PlatformSpec::rtx6000_ada_node(1).scaled(1e-3);
    let p4 = PlatformSpec::rtx6000_ada_node(4).scaled(1e-3);

    let mut systems: Vec<Box<dyn MttkrpSystem>> = vec![
        Box::new(AmpedSystem::with_rank(p4.clone(), 8)),
        Box::new(BlcoSystem::new(p1.clone())),
        Box::new(MmCsfSystem::new(p1.clone())),
        Box::new(PartiSystem::new(p1.clone())),
        Box::new(FlycooSystem::new(p1)),
        Box::new(EqualNnzSystem::new(p4)),
    ];
    for sys in systems.iter_mut() {
        let run = sys.execute(&t, &factors).unwrap_or_else(|e| {
            panic!("{} failed on a tiny tensor: {e}", sys.name());
        });
        check(&run, &want, sys.name());
    }
}

#[test]
fn four_mode_tensor_supported_systems() {
    let t = GenSpec::uniform(vec![20, 24, 18, 16], 2000, 303).generate();
    let factors = factors_for(&t, 4, 304);
    let want = reference_chain(&t, &factors);
    let p1 = PlatformSpec::rtx6000_ada_node(1).scaled(1e-3);
    let p2 = PlatformSpec::rtx6000_ada_node(2).scaled(1e-3);

    let mut systems: Vec<Box<dyn MttkrpSystem>> = vec![
        Box::new(AmpedSystem::with_rank(p2.clone(), 4)),
        Box::new(BlcoSystem::new(p1.clone())),
        Box::new(MmCsfSystem::new(p1.clone())),
        Box::new(FlycooSystem::new(p1.clone())),
        Box::new(EqualNnzSystem::new(p2)),
    ];
    for sys in systems.iter_mut() {
        let run = sys.execute(&t, &factors).expect("4-mode support");
        check(&run, &want, sys.name());
    }
    // ParTI is 3-mode only.
    let mut parti = PartiSystem::new(p1);
    assert!(matches!(
        parti.execute(&t, &factors),
        Err(SimError::Unsupported(_))
    ));
}

#[test]
fn five_mode_tensor_supported_systems() {
    let t = GenSpec::uniform(vec![14, 12, 10, 9, 8], 1500, 305).generate();
    let factors = factors_for(&t, 4, 306);
    let want = reference_chain(&t, &factors);
    let p1 = PlatformSpec::rtx6000_ada_node(1).scaled(1e-3);
    let p2 = PlatformSpec::rtx6000_ada_node(2).scaled(1e-3);

    let mut systems: Vec<Box<dyn MttkrpSystem>> = vec![
        Box::new(AmpedSystem::with_rank(p2, 4)),
        Box::new(BlcoSystem::new(p1.clone())),
        Box::new(FlycooSystem::new(p1.clone())),
    ];
    for sys in systems.iter_mut() {
        let run = sys.execute(&t, &factors).expect("5-mode support");
        check(&run, &want, sys.name());
    }
    // MM-CSF and ParTI reject 5 modes (the paper's Twitch gap).
    assert!(matches!(
        MmCsfSystem::new(p1.clone()).execute(&t, &factors),
        Err(SimError::Unsupported(_))
    ));
    assert!(matches!(
        PartiSystem::new(p1).execute(&t, &factors),
        Err(SimError::Unsupported(_))
    ));
}
