//! Out-of-core acceptance: the `amped-stream` pipeline decomposes tensors
//! whose nonzero footprint exceeds the simulated host memory, where the
//! in-core engine correctly reports out-of-memory — and on tensors both
//! paths can hold, the two engines agree.

use amped::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("amped_ooc_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The headline scenario: a tensor whose per-mode host copies do not fit in
/// the (scaled) host memory. The in-core engine must fail with the same
/// out-of-memory arithmetic the paper's Figure 5 baselines hit, while the
/// out-of-core engine — holding only a bounded staging budget — completes a
/// full ALS iteration.
#[test]
fn ooc_succeeds_where_in_core_hits_host_oom() {
    // Scaled platform: host = 1.5 TB × 2e-5 = 30 MB, GPU = 48 GB × 2e-5 ≈ 1 MB.
    let scale = 2e-5;
    let platform = PlatformSpec::rtx6000_ada_node(2).scaled(scale);
    let t = GenSpec {
        shape: vec![2000, 1500, 1200],
        nnz: 700_000,
        skew: vec![0.7, 0.4, 0.0],
        seed: 42,
    }
    .generate();
    // COO payload ≈ 11.2 MB; the in-core plan stores one copy per mode
    // (≈ 33.6 MB) and must exceed the 30 MB host pool.
    let host_bytes = platform.host.mem_bytes;
    assert!(
        3 * t.bytes() > host_bytes,
        "scenario broken: {} B of copies fit in {host_bytes} B of host memory",
        3 * t.bytes()
    );

    let cfg = AmpedConfig {
        rank: 8,
        isp_nnz: 1024,
        shard_nnz_budget: 8192,
        ..AmpedConfig::default()
    };

    // In-core: out-of-memory on the host pool.
    let err = AmpedEngine::new(&t, platform.clone(), cfg.clone()).unwrap_err();
    assert!(err.is_oom(), "in-core engine should OOM, got {err}");

    // Out-of-core: 16 Ki-element chunks (256 KB payload) rotating through a
    // 1 MB staging budget — 3% of the tensor's own footprint.
    let path = tmp("oversize.tnsb");
    let chunk_capacity = 16 * 1024;
    write_tnsb(&t, &path, chunk_capacity).unwrap();
    let stage_budget = 1 << 20;
    assert!(
        stage_budget < t.bytes(),
        "budget must be far below the tensor"
    );
    let mut ooc = OocEngine::open(&path, platform, cfg, stage_budget).unwrap();
    let opts = AlsOptions {
        max_iters: 1,
        tol: 0.0,
        seed: 9,
        ..Default::default()
    };
    let res = cp_als(&mut ooc, &opts).unwrap();
    assert_eq!(res.iterations, 1);
    assert_eq!(res.factors.len(), 3);
    assert!(res.fits[0].is_finite());
    assert!(res.report.total_time > 0.0);
    // The staging high-water mark stayed within the configured budget.
    assert!(ooc.stage_peak() <= stage_budget);
    std::fs::remove_file(path).ok();
}

/// On a small tensor both engines can hold, one ALS iteration from the same
/// seed must produce the same factors to 1e-6 — the out-of-core data path is
/// a different execution order over the same arithmetic.
#[test]
fn ooc_matches_in_core_factors_on_small_tensor() {
    let platform = PlatformSpec::rtx6000_ada_node(2).scaled(1e-3);
    let t = GenSpec::uniform(vec![24, 18, 15], 800, 7).generate();
    let cfg = AmpedConfig {
        rank: 4,
        isp_nnz: 128,
        shard_nnz_budget: 512,
        ..AmpedConfig::default()
    };
    let opts = AlsOptions {
        max_iters: 1,
        tol: 0.0,
        seed: 3,
        ..Default::default()
    };

    let mut in_core = AmpedEngine::new(&t, platform.clone(), cfg.clone()).unwrap();
    let reference = cp_als(&mut in_core, &opts).unwrap();

    let path = tmp("small.tnsb");
    write_tnsb(&t, &path, 100).unwrap();
    let mut ooc = OocEngine::open(&path, platform, cfg, 1 << 20).unwrap();
    let streamed = cp_als(&mut ooc, &opts).unwrap();

    assert_eq!(streamed.iterations, reference.iterations);
    for (d, (a, b)) in streamed.factors.iter().zip(&reference.factors).enumerate() {
        assert!(
            a.approx_eq(b, 1e-6, 1e-6),
            "mode {d} factors diverge: max diff {}",
            a.max_abs_diff(b)
        );
    }
    for (ls, lr) in streamed.lambda.iter().zip(&reference.lambda) {
        assert!(
            (ls - lr).abs() <= 1e-5 * lr.abs().max(1.0),
            "λ diverged: {ls} vs {lr}"
        );
    }
    assert!((streamed.fits[0] - reference.fits[0]).abs() < 1e-6);
    std::fs::remove_file(path).ok();
}

/// `.tns` text converts to `.tnsb` without materializing, and the converted
/// file decomposes to the same result as the original tensor.
#[test]
fn tns_conversion_feeds_the_ooc_engine() {
    let t = GenSpec::uniform(vec![40, 30, 20], 1500, 11).generate();
    let tns = tmp("conv.tns");
    let tnsb = tmp("conv.tnsb");
    io::write_tns_file(&t, &tns).unwrap();
    let meta = convert_tns_to_tnsb(&tns, &tnsb, 256).unwrap();
    assert_eq!(meta.nnz, t.nnz() as u64);

    let cfg = AmpedConfig {
        rank: 4,
        isp_nnz: 128,
        shard_nnz_budget: 512,
        ..AmpedConfig::default()
    };
    let mut e = OocEngine::open(
        &tnsb,
        PlatformSpec::rtx6000_ada_node(2).scaled(1e-3),
        cfg,
        1 << 20,
    )
    .unwrap();
    let res = cp_als(
        &mut e,
        &AlsOptions {
            max_iters: 2,
            tol: 0.0,
            seed: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(res.iterations, 2);
    assert!(res.fits.iter().all(|f| f.is_finite()));
    std::fs::remove_file(tns).ok();
    std::fs::remove_file(tnsb).ok();
}
