//! Property tests for the Chrome trace-event exporter: for arbitrary op
//! sequences under arbitrary (well-scoped) span structures,
//!
//! 1. the rendered JSON round-trips through the `serde_json` shim parser
//!    bit-for-bit, and
//! 2. the exported slices are well-nested per track — any two `X` events on
//!    the same `tid` are either disjoint or one contains the other — which
//!    is what Perfetto requires to stack them.
//!
//! The span structure is driven by the generated script (iterations →
//! modes → ops), mirroring how the ALS driver and engines open scopes.

use amped::prelude::*;
use amped::runtime::export::device_tid;
use amped::runtime::OpKind;
use proptest::prelude::*;
use serde_json::Value;

/// One scripted op: which GPU, which kind, and a size knob.
#[derive(Clone, Debug)]
struct ScriptOp {
    gpu: usize,
    kind: u8,
    size: u64,
}

/// Direct [`Strategy`] implementation (the offline proptest shim has no
/// `prop_map` combinator).
struct OpStrategy {
    gpus: usize,
}

impl Strategy for OpStrategy {
    type Value = ScriptOp;
    fn sample(&self, rng: &mut TestRng) -> ScriptOp {
        use rand::Rng;
        ScriptOp {
            gpu: rng.gen_range(0..self.gpus),
            kind: rng.gen_range(0u8..4),
            size: rng.gen_range(1u64..2_000_000),
        }
    }
}

fn op_strategy(gpus: usize) -> OpStrategy {
    OpStrategy { gpus }
}

/// Replays the script through a traced runtime: iterations → modes →
/// ops, with span scopes opened exactly like the ALS driver does.
fn run_script(script: &[Vec<Vec<ScriptOp>>], gpus: usize) -> Timeline {
    let mut rt = TracingRuntime::new(SimRuntime::new(
        PlatformSpec::rtx6000_ada_node(gpus).scaled(1e-3),
    ));
    let tl = rt.timeline();
    for (i, iteration) in script.iter().enumerate() {
        let _it = tl.span("iteration", i as u64);
        for (m, ops) in iteration.iter().enumerate() {
            let _mode = tl.span("mode", m as u64);
            for op in ops {
                match op.kind {
                    0 => {
                        rt.launch_grid(op.gpu, &|_| {}, &[1e-6; 3]);
                    }
                    1 => {
                        rt.h2d_time(op.gpu, 1, op.size);
                    }
                    2 => {
                        rt.d2h_time(op.gpu, 1, op.size);
                    }
                    _ => {
                        rt.scatter_time(gpus, &vec![op.size; gpus]);
                    }
                }
            }
        }
    }
    tl
}

fn x_events(root: &Value) -> Vec<(u64, f64, f64)> {
    let Value::Obj(fields) = root else {
        panic!("root must be an object");
    };
    let Some((_, Value::Arr(events))) = fields.iter().find(|(k, _)| k == "traceEvents") else {
        panic!("no traceEvents");
    };
    let get = |ev: &Value, key: &str| -> Option<Value> {
        match ev {
            Value::Obj(f) => f.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone()),
            _ => None,
        }
    };
    events
        .iter()
        .filter(|e| matches!(get(e, "ph"), Some(Value::Str(s)) if s == "X"))
        .map(|e| {
            let tid = match get(e, "tid") {
                Some(Value::Num(x)) => x as u64,
                other => panic!("tid: {other:?}"),
            };
            let ts = match get(e, "ts") {
                Some(Value::Num(x)) => x,
                other => panic!("ts: {other:?}"),
            };
            let dur = match get(e, "dur") {
                Some(Value::Num(x)) => x,
                other => panic!("dur: {other:?}"),
            };
            (tid, ts, dur)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn prop_chrome_trace_round_trips_and_nests(
        script in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(op_strategy(3), 0..5),
                1..3,
            ),
            1..3,
        ),
    ) {
        let tl = run_script(&script, 3);
        let v = chrome_trace(&tl);
        let rendered = chrome_trace_string(&tl);

        // 1. Round-trip through the shim parser is exact.
        let back: Value = serde_json::from_str(&rendered)
            .expect("exporter output must parse");
        prop_assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&v).unwrap()
        );

        // 2. Per track, slices are pairwise disjoint or nested.
        let xs = x_events(&v);
        for (a_idx, &(tid_a, ts_a, dur_a)) in xs.iter().enumerate() {
            for &(tid_b, ts_b, dur_b) in &xs[a_idx + 1..] {
                if tid_a != tid_b {
                    continue;
                }
                let (a0, a1) = (ts_a, ts_a + dur_a);
                let (b0, b1) = (ts_b, ts_b + dur_b);
                let eps = 1e-6; // µs-scale tolerance for f64 rounding
                let disjoint = a1 <= b0 + eps || b1 <= a0 + eps;
                let a_in_b = b0 <= a0 + eps && a1 <= b1 + eps;
                let b_in_a = a0 <= b0 + eps && b1 <= a1 + eps;
                prop_assert!(
                    disjoint || a_in_b || b_in_a,
                    "slices overlap without nesting on tid {}: [{}, {}] vs [{}, {}]",
                    tid_a, a0, a1, b0, b1
                );
            }
        }
    }

    #[test]
    fn prop_span_paths_on_records_match_the_open_scopes(
        script in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(op_strategy(2), 1..4),
                1..3,
            ),
            1..3,
        ),
    ) {
        let tl = run_script(&script, 2);
        for r in tl.snapshot() {
            // Every recorded op was issued under iteration/mode scopes: its
            // span path must be exactly two labels deep with those keys.
            prop_assert_eq!(r.span.depth(), 2, "span {}", r.span.render());
            let labels = r.span.labels();
            prop_assert_eq!(labels[0].key, "iteration");
            prop_assert_eq!(labels[1].key, "mode");
        }
    }
}

/// Host-track ops (scatters) still export with tid 0 and nest correctly —
/// a deterministic spot check of the device_tid convention.
#[test]
fn host_ops_land_on_tid_zero() {
    let mut rt = TracingRuntime::new(SimRuntime::new(
        PlatformSpec::rtx6000_ada_node(2).scaled(1e-3),
    ));
    let tl = rt.timeline();
    {
        let _it = tl.span("iteration", 0);
        rt.scatter_time(2, &[1000, 1000]);
    }
    assert_eq!(device_tid(Device::Host), 0);
    assert_eq!(device_tid(Device::Gpu(3)), 4);
    let records = tl.snapshot();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].kind, OpKind::Scatter);
    assert_eq!(records[0].device, Device::Host);
}
