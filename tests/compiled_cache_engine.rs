//! Engine-level contracts of the compiled-shard cache: compile-once
//! amortization across ALS-style iterations, bit-identical warm-cache
//! execution, invalidation on `replan`, and the out-of-core engine's
//! budget-charged compiled-chunk cache (warm iterations skip disk reads;
//! budget pressure degrades to compile-per-visit with a one-shot warning).

use amped::prelude::*;
use amped::runtime::DispatchKind;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn tensor() -> SparseTensor {
    GenSpec {
        shape: vec![400, 300, 200],
        nnz: 20_000,
        skew: vec![0.6, 0.3, 0.0],
        seed: 91,
    }
    .generate()
}

fn factors(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    t.shape()
        .iter()
        .map(|&d| Mat::random(d as usize, rank, &mut rng))
        .collect()
}

fn cfg() -> AmpedConfig {
    AmpedConfig {
        rank: 16,
        isp_nnz: 1024,
        shard_nnz_budget: 4096,
        ..AmpedConfig::default()
    }
}

fn compiled_tune() -> TuneParams {
    TuneParams {
        dispatch: DispatchKind::CompiledSegmented,
        ..TuneParams::default()
    }
}

#[test]
fn in_core_engine_compiles_once_and_hits_warm() {
    let t = tensor();
    let fs = factors(&t, 16, 92);
    let registry = MetricsRegistry::new();
    let spec = PlatformSpec::rtx6000_ada_node(2).scaled(1e-3);
    let rt = SimRuntime::new(spec).with_metrics(registry.clone());
    let mut e = AmpedEngine::with_runtime(&t, Box::new(rt), cfg()).unwrap();
    e.set_tune(compiled_tune());

    // Pass 1 (cold): every (mode, shard) pair compiles exactly once.
    let cold: Vec<Mat> = (0..t.order())
        .map(|d| e.mttkrp_mode(d, &fs).unwrap().0)
        .collect();
    let compiles = registry.counter_value("shard_compiles", &[]);
    assert!(compiles > 0, "compiled dispatch must compile shards");
    assert_eq!(
        registry.counter_value("compiled_cache_hits", &[]),
        0,
        "first pass has nothing warm to hit"
    );

    // Pass 2 (warm): zero new compiles, one hit per compiled shard, and the
    // outputs are bit-identical to the cold pass.
    let warm: Vec<Mat> = (0..t.order())
        .map(|d| e.mttkrp_mode(d, &fs).unwrap().0)
        .collect();
    assert_eq!(
        registry.counter_value("shard_compiles", &[]),
        compiles,
        "warm pass must not recompile: shard_compiles stays at modes x shards"
    );
    assert_eq!(
        registry.counter_value("compiled_cache_hits", &[]),
        compiles,
        "warm pass hits every cached shard exactly once"
    );
    for (d, (c, w)) in cold.iter().zip(&warm).enumerate() {
        assert_eq!(c.as_slice(), w.as_slice(), "mode {d}: warm != cold bits");
    }

    // Correctness: compiled dispatch agrees with the sequential reference.
    for (d, got) in warm.iter().enumerate() {
        let want = mttkrp_ref(&t, &fs, d);
        assert!(
            got.approx_eq(&want, 1e-3, 1e-4),
            "mode {d}: max diff {}",
            got.max_abs_diff(&want)
        );
    }
}

#[test]
fn replan_invalidates_compiled_shards() {
    let t = tensor();
    let fs = factors(&t, 16, 93);
    let registry = MetricsRegistry::new();
    let spec = PlatformSpec::rtx6000_ada_node(3).scaled(1e-3);
    let rt = SimRuntime::new(spec).with_metrics(registry.clone());
    let mut e = AmpedEngine::with_runtime(&t, Box::new(rt), cfg()).unwrap();
    e.set_tune(compiled_tune());

    e.mttkrp_mode(0, &fs).unwrap();
    let compiles_before = registry.counter_value("shard_compiles", &[]);
    assert!(compiles_before > 0);
    assert_eq!(registry.counter_value("compiled_cache_evictions", &[]), 0);

    // Replanning mode 0 changes the shard decomposition: the stale layouts
    // must be evicted, and the next pass recompiles against the new plan.
    let dim = t.dim(0);
    let a = ModeAssignment::from_index_ranges(0, vec![0..7, 7..19, 19..dim]);
    e.replan(&a).unwrap();
    assert!(
        registry.counter_value("compiled_cache_evictions", &[]) > 0,
        "replan must evict mode 0's compiled shards"
    );

    let (out, _) = e.mttkrp_mode(0, &fs).unwrap();
    assert!(
        registry.counter_value("shard_compiles", &[]) > compiles_before,
        "post-replan pass must compile fresh layouts, not reuse stale ones"
    );
    let want = mttkrp_ref(&t, &fs, 0);
    assert!(
        out.approx_eq(&want, 1e-3, 1e-4),
        "post-replan compiled output drifted: max diff {}",
        out.max_abs_diff(&want)
    );
}

#[test]
fn ooc_engine_caches_compiled_chunks_and_skips_disk() {
    let t = tensor();
    let fs = factors(&t, 16, 94);
    let dir = std::env::temp_dir().join("amped_compiled_cache");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("warm.tnsb");
    write_tnsb(&t, &path, 4096).unwrap();

    let registry = MetricsRegistry::new();
    let spec = PlatformSpec::rtx6000_ada_node(2).scaled(1e-3);
    let rt = SimRuntime::new(spec).with_metrics(registry.clone());
    // Roomy budget: every compiled chunk fits next to the streaming chunk.
    let mut e = OocEngine::with_runtime(&path, Box::new(rt), cfg(), 8 << 20).unwrap();
    e.set_tune(compiled_tune());

    let (cold, _) = e.mttkrp_mode(0, &fs).unwrap();
    let reads_cold = registry.counter_value("ooc_chunk_reads", &[]);
    let compiles = registry.counter_value("shard_compiles", &[]);
    assert!(reads_cold > 0 && compiles > 0);

    // Warm iteration: every chunk executes from its compiled layout — zero
    // additional disk reads, zero recompiles, bit-identical factors.
    let (warm, _) = e.mttkrp_mode(0, &fs).unwrap();
    assert_eq!(
        registry.counter_value("ooc_chunk_reads", &[]),
        reads_cold,
        "warm compiled iteration must not touch disk"
    );
    assert_eq!(registry.counter_value("shard_compiles", &[]), compiles);
    assert_eq!(
        registry.counter_value("compiled_cache_hits", &[]),
        compiles,
        "every cached chunk hit exactly once on the warm pass"
    );
    assert_eq!(cold.as_slice(), warm.as_slice(), "warm != cold bits");
    let want = mttkrp_ref(&t, &fs, 0);
    assert!(
        cold.approx_eq(&want, 1e-3, 1e-4),
        "ooc compiled output drifted: max diff {}",
        cold.max_abs_diff(&want)
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn ooc_budget_pressure_degrades_to_compile_per_visit() {
    let t = tensor();
    let fs = factors(&t, 16, 95);
    let dir = std::env::temp_dir().join("amped_compiled_cache");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tight.tnsb");
    let cap = 4096;
    write_tnsb(&t, &path, cap).unwrap();

    let registry = MetricsRegistry::new();
    let spec = PlatformSpec::rtx6000_ada_node(2).scaled(1e-3);
    let rt = SimRuntime::new(spec).with_metrics(registry.clone());
    // Tight budget: enough to stream (one chunk plus partitioning scratch),
    // never enough to keep a compiled layout (whose gathered indices cost
    // about what the scratch did, plus segment pointers) next to the
    // headroom reserved for streaming the next chunk.
    let budget = cap as u64 * (t.elem_bytes() + t.order() as u64 * 4);
    let mut e = OocEngine::with_runtime(&path, Box::new(rt), cfg(), budget).unwrap();
    e.set_tune(compiled_tune());

    let (out, _) = e.mttkrp_mode(0, &fs).unwrap();
    let compiles_cold = registry.counter_value("shard_compiles", &[]);
    let (again, _) = e.mttkrp_mode(0, &fs).unwrap();
    // Chunks that could not be cached recompile on the second visit.
    assert!(
        registry.counter_value("shard_compiles", &[]) > compiles_cold,
        "under budget pressure the engine must fall back to compile-per-visit"
    );
    let warned = amped::sim::obs::warnings()
        .iter()
        .any(|(k, _)| k == "ooc-compiled-cache-budget");
    assert!(
        warned,
        "budget-pressure fallback must warn once: {:?}",
        amped::sim::obs::warnings()
    );
    // Degraded, not wrong: results stay bit-stable and correct.
    assert_eq!(out.as_slice(), again.as_slice());
    assert!(out.approx_eq(&mttkrp_ref(&t, &fs, 0), 1e-3, 1e-4));
    // The budget never leaks: everything charged for caching was released
    // or never charged.
    assert!(e.stage_peak() <= budget);
    std::fs::remove_file(path).ok();
}
