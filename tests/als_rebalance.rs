//! ALS-time rebalancing integration: on a heterogeneous platform, an
//! engine planned with the default nnz-weighted CCP starts out imbalanced
//! (the slow pair of GPUs sits on the critical path); the
//! `RebalancingPlanner` inside `cp_als` must observe the imbalance,
//! trigger, swap observed-throughput CCP assignments in through
//! `MttkrpEngine::replan`, and measurably cut the imbalance overhead in
//! later iterations — without changing what the decomposition computes.

use amped::prelude::*;
use rand::SeedableRng;

fn tensor() -> SparseTensor {
    GenSpec {
        shape: vec![1200, 300, 300],
        nnz: 120_000,
        skew: vec![0.9, 0.3, 0.0],
        seed: 2024,
    }
    .generate()
}

fn cfg() -> AmpedConfig {
    AmpedConfig {
        rank: 16,
        isp_nnz: 1024,
        shard_nnz_budget: 8192,
        ..Default::default()
    }
}

#[test]
fn rebalancer_triggers_and_cuts_imbalance_on_hetero_platform() {
    let t = tensor();
    let spec = PlatformSpec::hetero_2fast_2slow().scaled(1e-3);
    let mut e = AmpedEngine::new(&t, spec, cfg()).unwrap(); // default nnz-CCP plan
    let res = cp_als(
        &mut e,
        &AlsOptions {
            max_iters: 4,
            tol: 0.0,
            seed: 3,
            rebalance: Some(RebalanceOptions { threshold: 0.2 }),
        },
    )
    .unwrap();
    assert!(
        res.rebalances > 0,
        "hetero platform must trigger at least one replan"
    );
    let first = res
        .per_iteration
        .first()
        .unwrap()
        .compute_overhead_fraction();
    let last = res
        .per_iteration
        .last()
        .unwrap()
        .compute_overhead_fraction();
    assert!(
        first > 0.2,
        "nnz-equal plan on 2-fast-2-slow should start imbalanced, got {first:.3}"
    );
    assert!(
        last < 0.6 * first,
        "rebalancing should cut the imbalance overhead: {first:.3} -> {last:.3}"
    );
    // Later iterations must also get faster end to end.
    assert!(
        res.per_iteration.last().unwrap().total_time
            < res.per_iteration.first().unwrap().total_time,
        "rebalanced iterations should be faster"
    );
}

#[test]
fn rebalanced_als_converges_like_the_static_plan() {
    let t = tensor();
    let opts_static = AlsOptions {
        max_iters: 4,
        tol: 0.0,
        seed: 3,
        rebalance: None,
    };
    let opts_rb = AlsOptions {
        rebalance: Some(RebalanceOptions { threshold: 0.2 }),
        ..opts_static.clone()
    };
    let spec = PlatformSpec::hetero_2fast_2slow().scaled(1e-3);
    let mut e1 = AmpedEngine::new(&t, spec.clone(), cfg()).unwrap();
    let r_static = cp_als(&mut e1, &opts_static).unwrap();
    let mut e2 = AmpedEngine::new(&t, spec, cfg()).unwrap();
    let r_rb = cp_als(&mut e2, &opts_rb).unwrap();
    assert_eq!(r_static.rebalances, 0);
    // Replanning only moves shard ownership; the math is the same modulo
    // f32 accumulation order, so the fit trace must agree closely.
    for (a, b) in r_static.fits.iter().zip(&r_rb.fits) {
        assert!(
            (a - b).abs() < 1e-3,
            "fit traces diverged: {:?} vs {:?}",
            r_static.fits,
            r_rb.fits
        );
    }
}

#[test]
fn homogeneous_platform_never_triggers() {
    let t = tensor();
    let spec = PlatformSpec::rtx6000_ada_node(4).scaled(1e-3);
    let mut e = AmpedEngine::new(&t, spec, cfg()).unwrap();
    let res = cp_als(
        &mut e,
        &AlsOptions {
            max_iters: 3,
            tol: 0.0,
            seed: 3,
            rebalance: Some(RebalanceOptions { threshold: 0.2 }),
        },
    )
    .unwrap();
    assert_eq!(
        res.rebalances, 0,
        "balanced nnz-CCP on identical GPUs must stay under a 20% threshold"
    );
}

#[test]
fn ooc_engine_replans_between_iterations_too() {
    // Uniform data over wide modes: rows stay cold, so the unsorted-payload
    // atomic-serialization floor (which does not scale with device speed)
    // is negligible and out-of-core compute is genuinely throughput-bound —
    // the regime where observed-speed CCP converges. (On heavily skewed
    // tensors the hot-row serialization cost dominates both fast and slow
    // devices equally, which is a cost-model property, not a planner bug.)
    let t = GenSpec::uniform(vec![3000, 2000, 2000], 400_000, 808).generate();
    let dir = std::env::temp_dir().join("amped_als_rebalance");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rb.tnsb");
    let cap = 32_768;
    write_tnsb(&t, &path, cap).unwrap();
    let spec = PlatformSpec::hetero_2fast_2slow().scaled(1e-3);
    let budget = cap as u64 * (t.elem_bytes() + t.order() as u64 * 4) * 2;
    let c = AmpedConfig {
        rank: 16,
        isp_nnz: 8192,
        shard_nnz_budget: 32_768,
        ..Default::default()
    };
    let mut e = OocEngine::open(&path, spec, c, budget).unwrap();
    let res = cp_als(
        &mut e,
        &AlsOptions {
            max_iters: 3,
            tol: 0.0,
            seed: 5,
            rebalance: Some(RebalanceOptions { threshold: 0.15 }),
        },
    )
    .unwrap();
    assert!(
        res.rebalances > 0,
        "out-of-core engine must also replan on the hetero platform"
    );
    let first = res
        .per_iteration
        .first()
        .unwrap()
        .compute_overhead_fraction();
    let last = res
        .per_iteration
        .last()
        .unwrap()
        .compute_overhead_fraction();
    assert!(
        last < 0.6 * first,
        "ooc imbalance overhead should fall: {first:.3} -> {last:.3}"
    );
    assert!(
        res.per_iteration.last().unwrap().total_time
            < res.per_iteration.first().unwrap().total_time,
        "rebalanced ooc iterations should be faster"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn dynamic_queue_with_rebalance_errors_cleanly() {
    // The dynamic-queue ablation plans one global pool, so there is no
    // per-GPU ownership to rebalance — cp_als must say so, not panic.
    let t = GenSpec::uniform(vec![60, 40, 40], 3000, 17).generate();
    let c = AmpedConfig {
        schedule: SchedulePolicy::DynamicQueue,
        ..cfg()
    };
    let spec = PlatformSpec::hetero_2fast_2slow().scaled(1e-3);
    let mut e = AmpedEngine::new(&t, spec, c).unwrap();
    let err = cp_als(
        &mut e,
        &AlsOptions {
            max_iters: 2,
            tol: 0.0,
            seed: 1,
            rebalance: Some(RebalanceOptions { threshold: 0.2 }),
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, SimError::Unsupported(_)),
        "expected Unsupported, got {err}"
    );
    assert!(err.to_string().contains("rebalancing"), "{err}");
}

#[test]
fn manual_replan_preserves_mttkrp_correctness() {
    // Direct `replan` exercise: hand the engine a deliberately skewed
    // assignment and check the MTTKRP is still exact.
    let t = tensor();
    let spec = PlatformSpec::rtx6000_ada_node(3).scaled(1e-3);
    let mut e = AmpedEngine::new(&t, spec, cfg()).unwrap();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
    let factors: Vec<Mat> = t
        .shape()
        .iter()
        .map(|&d| Mat::random(d as usize, 16, &mut rng))
        .collect();
    let dim = t.dim(0);
    let a = ModeAssignment::from_index_ranges(0, vec![0..5, 5..10, 10..dim]);
    e.replan(&a).unwrap();
    assert_eq!(e.plan().modes[0].device_ranges, vec![0..5, 5..10, 10..dim]);
    let (out, _) = e.mttkrp_mode(0, &factors).unwrap();
    assert!(out.approx_eq(&mttkrp_ref(&t, &factors, 0), 1e-3, 1e-4));
    // Malformed assignments are rejected, not absorbed.
    assert!(e
        .replan(&ModeAssignment::from_index_ranges(0, vec![0..5, 6..dim]))
        .is_err());
    let whole = std::iter::once(0..dim).collect();
    assert!(e
        .replan(&ModeAssignment::from_index_ranges(9, whole))
        .is_err());
}
