//! End-to-end CP-ALS through the facade, plus FROSTT I/O round trips feeding
//! the engine.

use amped::prelude::*;

#[test]
fn cp_als_end_to_end_recovers_structure() {
    let (t, _) = low_rank_dense(&[24, 20, 16], 5, 0.0, 501);
    let platform = PlatformSpec::rtx6000_ada_node(3).scaled(1e-3);
    let cfg = AmpedConfig {
        rank: 5,
        isp_nnz: 1024,
        shard_nnz_budget: 8192,
        ..Default::default()
    };
    let mut engine = AmpedEngine::new(&t, platform, cfg).unwrap();
    let res = cp_als(
        &mut engine,
        &AlsOptions {
            max_iters: 50,
            tol: 1e-8,
            seed: 502,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        *res.fits.last().unwrap() > 0.98,
        "rank-5 recovery failed: fits {:?}",
        res.fits
    );
    // λ sorted sanity: all weights positive for a positive tensor.
    assert!(res.lambda.iter().all(|&l| l > 0.0));
}

#[test]
fn frostt_round_trip_preserves_mttkrp_results() {
    let t = GenSpec {
        shape: vec![50, 40, 30],
        nnz: 2000,
        skew: vec![0.6, 0.0, 0.0],
        seed: 503,
    }
    .generate();
    let mut buf = Vec::new();
    io::write_tns(&t, &mut buf).unwrap();
    let t2 = io::read_tns(buf.as_slice()).unwrap();

    // Same nnz; shapes may shrink to the max used coordinate, so compare
    // MTTKRP outputs on the shared row space.
    assert_eq!(t.nnz(), t2.nnz());
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(504);
    let factors: Vec<Mat> = t
        .shape()
        .iter()
        .map(|&d| Mat::random(d as usize, 8, &mut rng))
        .collect();
    let factors2: Vec<Mat> = t2
        .shape()
        .iter()
        .enumerate()
        .map(|(m, &d)| Mat::from_fn(d as usize, 8, |r, c| factors[m].get(r, c)))
        .collect();
    let a = mttkrp_ref(&t, &factors, 0);
    let b = mttkrp_ref(&t2, &factors2, 0);
    for r in 0..t2.dim(0) as usize {
        for c in 0..8 {
            let (x, y) = (a.get(r, c), b.get(r, c));
            assert!(
                (x - y).abs() <= 1e-4 + 1e-3 * x.abs().max(y.abs()),
                "row {r} col {c}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn deterministic_simulation_across_runs() {
    let t = Dataset::Twitch.generate(5e-5);
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(505);
    let factors: Vec<Mat> = t
        .shape()
        .iter()
        .map(|&d| Mat::random(d as usize, 16, &mut rng))
        .collect();
    let run = |seed_irrelevant: u64| {
        let _ = seed_irrelevant;
        AmpedSystem::with_rank(PlatformSpec::rtx6000_ada_node(4).scaled(5e-5), 16)
            .execute(&t, &factors)
            .unwrap()
            .report
    };
    let r1 = run(1);
    let r2 = run(2);
    assert_eq!(
        r1.total_time, r2.total_time,
        "simulated time must be deterministic"
    );
    assert_eq!(r1.per_mode, r2.per_mode);
    for (a, b) in r1.per_gpu.iter().zip(&r2.per_gpu) {
        assert_eq!(a.compute, b.compute);
        assert_eq!(a.h2d, b.h2d);
        assert_eq!(a.p2p, b.p2p);
    }
}
