//! Figure 5's out-of-memory pattern, reproduced from capacity arithmetic.
//!
//! At any uniform scale, the ratio of tensor footprint to (equally scaled)
//! device capacity is preserved, so the paper's success/failure matrix must
//! emerge:
//!
//! | System | Amazon | Patents | Reddit | Twitch |
//! |---|---|---|---|---|
//! | AMPED (4 GPU) | ✓ | ✓ | ✓ | ✓ |
//! | BLCO | ✓ | ✓ | ✓ | ✓ |
//! | MM-CSF | ✓ | OOM | OOM | unsupported (5 modes) |
//! | ParTI-GPU | ✓ | ✓ | OOM | unsupported (5 modes) |
//! | FLYCOO-GPU | OOM | OOM | OOM | ✓ |

use amped::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Small scale for test speed; the capacity *ratios* match the paper's
/// full-scale setup by construction (DESIGN.md §1).
const SCALE: f64 = 5e-5;

#[derive(Debug, PartialEq, Clone, Copy)]
enum Expect {
    Runs,
    Oom,
    Unsupported,
}

fn run_one(sys: &mut dyn MttkrpSystem, t: &SparseTensor, rank: usize) -> Expect {
    let mut rng = SmallRng::seed_from_u64(7);
    let factors: Vec<Mat> = t
        .shape()
        .iter()
        .map(|&d| Mat::random(d as usize, rank, &mut rng))
        .collect();
    match sys.execute(t, &factors) {
        Ok(_) => Expect::Runs,
        Err(e) if e.is_oom() => Expect::Oom,
        Err(SimError::Unsupported(_)) => Expect::Unsupported,
        Err(e) => panic!("unexpected error class: {e}"),
    }
}

#[test]
fn fig5_oom_pattern_emerges_from_capacity_accounting() {
    use Expect::*;
    let expectations: [(Dataset, [Expect; 5]); 4] = [
        (Dataset::Amazon, [Runs, Runs, Runs, Runs, Oom]),
        (Dataset::Patents, [Runs, Runs, Oom, Runs, Oom]),
        (Dataset::Reddit, [Runs, Runs, Oom, Oom, Oom]),
        (
            Dataset::Twitch,
            [Runs, Runs, Unsupported, Unsupported, Runs],
        ),
    ];
    let p1 = PlatformSpec::rtx6000_ada_node(1).scaled(SCALE);
    let p4 = PlatformSpec::rtx6000_ada_node(4).scaled(SCALE);
    for (dataset, expected) in expectations {
        let t = dataset.generate(SCALE);
        let mut systems: Vec<Box<dyn MttkrpSystem>> = vec![
            Box::new(AmpedSystem::with_rank(p4.clone(), 32)),
            Box::new(BlcoSystem::new(p1.clone())),
            Box::new(MmCsfSystem::new(p1.clone())),
            Box::new(PartiSystem::new(p1.clone())),
            Box::new(FlycooSystem::new(p1.clone())),
        ];
        for (sys, &want) in systems.iter_mut().zip(&expected) {
            let got = run_one(sys.as_mut(), &t, 32);
            assert_eq!(
                got,
                want,
                "{} on {}: expected {:?}, got {:?} (tensor {} nnz, {} B; GPU {} B)",
                sys.name(),
                dataset.name(),
                want,
                got,
                t.nnz(),
                t.bytes(),
                p1.gpus[0].mem_bytes
            );
        }
    }
}
