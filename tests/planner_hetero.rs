//! Heterogeneous-platform scenario: on a node mixing fast and slow GPUs
//! (`PlatformSpec::hetero_2fast_2slow`), cost-guided CCP must beat
//! nnz-equal CCP on simulated makespan, and the engine must execute the
//! cost-guided plan correctly.

use amped::prelude::*;
use rand::SeedableRng;

/// The seeded Zipf tensor of the acceptance scenario.
fn zipf_tensor() -> SparseTensor {
    GenSpec {
        shape: vec![3000, 400, 400],
        nnz: 400_000,
        skew: vec![1.1, 0.4, 0.0],
        seed: 4242,
    }
    .generate()
}

fn hetero_cost(t: &SparseTensor, rank: usize, isp_nnz: usize) -> PlatformCostQuery {
    PlatformCostQuery::new(
        &PlatformSpec::hetero_2fast_2slow(),
        WorkloadProfile {
            order: t.order(),
            rank,
            elem_bytes: t.elem_bytes(),
            isp_nnz,
        },
    )
}

#[test]
fn cost_guided_ccp_cuts_modeled_makespan_by_15_percent() {
    let t = zipf_tensor();
    let q = hetero_cost(&t, 32, 8192);
    let stats = PlanStats {
        nnz: t.nnz() as u64,
    };
    for d in 0..t.order() {
        let hist = t.mode_hist(d);
        let by_nnz = NnzCcp.plan_mode(d, &hist, &stats, &q).unwrap();
        let by_cost = CostGuidedCcp.plan_mode(d, &hist, &stats, &q).unwrap();
        let mk_nnz = modeled_makespan(&by_nnz, &hist, &q);
        let mk_cost = modeled_makespan(&by_cost, &hist, &q);
        assert!(
            mk_cost <= 0.85 * mk_nnz,
            "mode {d}: cost-guided makespan {mk_cost:.6} must be ≥15% under \
             nnz-equal {mk_nnz:.6} on the 2-fast-2-slow platform"
        );
        // Fast devices (0, 1) must own more nonzeros than slow ones (2, 3).
        let loads = by_cost.loads(&hist);
        assert!(
            loads[0] > loads[2] && loads[1] > loads[3],
            "mode {d}: fast devices should carry more work: {loads:?}"
        );
    }
}

#[test]
fn homogeneous_platform_makes_cost_guided_equal_nnz_ccp() {
    // With identical devices the two policies optimize the same objective:
    // same per-device loads (ranges may differ only by tie-breaking).
    let t = zipf_tensor();
    let q = PlatformCostQuery::new(
        &PlatformSpec::rtx6000_ada_node(4),
        WorkloadProfile {
            order: t.order(),
            rank: 32,
            elem_bytes: t.elem_bytes(),
            isp_nnz: 8192,
        },
    );
    let stats = PlanStats {
        nnz: t.nnz() as u64,
    };
    for d in 0..t.order() {
        let hist = t.mode_hist(d);
        let by_nnz = NnzCcp.plan_mode(d, &hist, &stats, &q).unwrap();
        let by_cost = CostGuidedCcp.plan_mode(d, &hist, &stats, &q).unwrap();
        let max_nnz = by_nnz.loads(&hist).into_iter().max().unwrap();
        let max_cost = by_cost.loads(&hist).into_iter().max().unwrap();
        assert_eq!(
            max_nnz, max_cost,
            "mode {d}: homogeneous cost-guided CCP must match nnz CCP's bottleneck"
        );
    }
}

#[test]
fn engine_runs_cost_guided_plan_faster_and_correct_on_hetero_node() {
    let t = zipf_tensor();
    let cfg = AmpedConfig {
        rank: 32,
        isp_nnz: 2048,
        shard_nnz_budget: 16_384,
        ..Default::default()
    };
    let spec = PlatformSpec::hetero_2fast_2slow().scaled(1e-3);
    let mut by_nnz = AmpedEngine::with_planner(
        &t,
        Box::new(SimRuntime::new(spec.clone())),
        cfg.clone(),
        &NnzCcp,
    )
    .unwrap();
    let mut by_cost = AmpedEngine::with_planner(
        &t,
        Box::new(SimRuntime::new(spec)),
        cfg.clone(),
        &CostGuidedCcp,
    )
    .unwrap();

    let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
    let factors: Vec<Mat> = t
        .shape()
        .iter()
        .map(|&d| Mat::random(d as usize, cfg.rank, &mut rng))
        .collect();
    let want = mttkrp_ref(&t, &factors, 0);

    let (out_nnz, t_nnz) = by_nnz.mttkrp_mode(0, &factors).unwrap();
    let (out_cost, t_cost) = by_cost.mttkrp_mode(0, &factors).unwrap();
    // Both plans compute the same MTTKRP.
    assert!(out_nnz.approx_eq(&want, 1e-3, 1e-4));
    assert!(out_cost.approx_eq(&want, 1e-3, 1e-4));
    // And the cost-guided plan finishes the mode measurably sooner.
    assert!(
        t_cost.wall < 0.9 * t_nnz.wall,
        "cost-guided wall {:.6} should undercut nnz-equal wall {:.6} by ≥10%",
        t_cost.wall,
        t_nnz.wall
    );
}

#[test]
fn dynamic_queue_prices_candidates_correctly_on_hetero_node() {
    // Regression: the earliest-finish greedy used each shard's precomputed
    // compute time, which is priced against the shard's *planning owner* —
    // on a heterogeneous spec that estimated a fast GPU's finish with a
    // slow GPU's cost (and vice versa). With per-candidate re-pricing the
    // dynamic schedule's modeled makespan must be no worse than static
    // nnz-balanced CCP, which leaves the slow pair on the critical path.
    let t = zipf_tensor();
    let cfg = AmpedConfig {
        rank: 32,
        isp_nnz: 2048,
        shard_nnz_budget: 16_384,
        ..Default::default()
    };
    let spec = PlatformSpec::hetero_2fast_2slow().scaled(1e-3);
    let mut dynamic = AmpedEngine::new(
        &t,
        spec.clone(),
        AmpedConfig {
            schedule: SchedulePolicy::DynamicQueue,
            ..cfg.clone()
        },
    )
    .unwrap();
    let mut static_ccp = AmpedEngine::new(&t, spec, cfg.clone()).unwrap();

    let mut rng = rand::rngs::SmallRng::seed_from_u64(79);
    let factors: Vec<Mat> = t
        .shape()
        .iter()
        .map(|&d| Mat::random(d as usize, cfg.rank, &mut rng))
        .collect();
    let want = mttkrp_ref(&t, &factors, 0);
    let (out_dyn, t_dyn) = dynamic.mttkrp_mode(0, &factors).unwrap();
    let (out_static, t_static) = static_ccp.mttkrp_mode(0, &factors).unwrap();
    assert!(out_dyn.approx_eq(&want, 1e-3, 1e-4));
    assert!(out_static.approx_eq(&want, 1e-3, 1e-4));
    assert!(
        t_dyn.wall <= t_static.wall * 1.0001,
        "dynamic earliest-finish ({:.6}s) must not lose to static nnz-CCP ({:.6}s) \
         on the 2-fast-2-slow node",
        t_dyn.wall,
        t_static.wall
    );
}

#[test]
fn ooc_engine_accepts_cost_guided_planner_on_hetero_node() {
    let t = GenSpec {
        shape: vec![600, 200, 200],
        nnz: 30_000,
        skew: vec![1.0, 0.3, 0.0],
        seed: 555,
    }
    .generate();
    let dir = std::env::temp_dir().join("amped_planner_hetero");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hetero.tnsb");
    write_tnsb(&t, &path, 2048).unwrap();
    let cfg = AmpedConfig {
        rank: 16,
        isp_nnz: 1024,
        shard_nnz_budget: 2048,
        ..Default::default()
    };
    let spec = PlatformSpec::hetero_2fast_2slow().scaled(1e-3);
    let budget = 2048 * (t.elem_bytes() + t.order() as u64 * 4) * 2;
    let mut e = OocEngine::with_planner(
        &path,
        Box::new(SimRuntime::new(spec)),
        cfg.clone(),
        budget,
        &CostGuidedCcp,
    )
    .unwrap();
    // Fast devices own more rows than slow ones under the cost-guided plan.
    for d in 0..t.order() {
        let loads = e.plan().modes[d].gpu_loads();
        assert!(
            loads[0] > loads[2],
            "mode {d}: fast device should own more nonzeros: {loads:?}"
        );
    }
    let mut rng = rand::rngs::SmallRng::seed_from_u64(78);
    let factors: Vec<Mat> = t
        .shape()
        .iter()
        .map(|&d| Mat::random(d as usize, cfg.rank, &mut rng))
        .collect();
    let (out, _) = e.mttkrp_mode(0, &factors).unwrap();
    assert!(out.approx_eq(&mttkrp_ref(&t, &factors, 0), 1e-3, 1e-4));
    std::fs::remove_file(path).ok();
}
