//! Property tests: the kernel layer's compiled segmented-reduction MTTKRP
//! is bit-identical to the sequential `f64` reference (and therefore within
//! the 1-ulp contract), bit-invariant across worker counts and block
//! partitions, reusable across launches (warm cache ≡ cold compile), and
//! transparent to the tuned `rank_chunk` column-tile width.

use amped::prelude::*;
use amped::runtime::kernels::{CompiledShard, FactorsView, FnSource, MttkrpOut};
use amped::runtime::TuneParams;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn compile(t: &SparseTensor, mode: usize) -> CompiledShard {
    let src = FnSource::new(|e, m| t.idx(e, m), |e| t.value(e));
    CompiledShard::compile(&src, mode, t.order(), 0..t.nnz())
}

fn run_compiled(
    shard: &CompiledShard,
    t: &SparseTensor,
    fs: &[Mat],
    workers: usize,
    rank_chunk: usize,
) -> Vec<f32> {
    let r = fs[shard.mode()].cols();
    let out = MttkrpOut::zeros(t.dim(shard.mode()) as usize, r);
    let views = FactorsView::new(fs.iter().map(|f| f.as_slice()).collect(), r);
    let tune = TuneParams {
        workers,
        rank_chunk,
        ..Default::default()
    };
    amped::runtime::kernels::mttkrp_host_compiled(shard, &views, &tune, &out);
    out.to_vec()
}

fn setup(shape: Vec<u32>, nnz: usize, rank: usize, seed: u64) -> (SparseTensor, Vec<Mat>) {
    let t = GenSpec::uniform(shape, nnz, seed).generate();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5E6);
    let fs = t
        .shape()
        .iter()
        .map(|&d| Mat::random(d as usize, rank, &mut rng))
        .collect();
    (t, fs)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Stable-sorted segments preserve each output cell's element
    /// accumulation order, and every segment has exactly one writer, so the
    /// compiled path reproduces the sequential `f64` reference **bit for
    /// bit** on a zeroed output — strictly stronger than the privatized
    /// path's one-ulp envelope, and trivially within it.
    #[test]
    fn compiled_is_bit_identical_to_sequential_reference(
        d0 in 2u32..60,
        d1 in 2u32..40,
        d2 in 2u32..40,
        nnz in 0usize..500,
        rank in 1usize..20,
        workers in 1usize..32,
        mode in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let (t, fs) = setup(vec![d0, d1, d2], nnz, rank, seed);
        let shard = compile(&t, mode);
        let got = run_compiled(&shard, &t, &fs, workers, 32);
        let want = mttkrp_ref(&t, &fs, mode);
        for (i, (g, w)) in got.iter().zip(want.as_slice()).enumerate() {
            prop_assert_eq!(
                g.to_bits(), w.to_bits(),
                "cell {}: compiled {} vs sequential reference {}", i, g, w
            );
        }
    }

    /// Segments are assigned wholly to blocks and blocks never share an
    /// output row, so the result is independent of the worker count — and
    /// of the block partition the worker count implies. Warm-cache reuse
    /// (same compiled layout, second launch) is bit-identical to the cold
    /// compile-and-run, including across *different* worker counts between
    /// the two launches.
    #[test]
    fn compiled_is_worker_count_and_cache_temperature_invariant(
        d0 in 2u32..60,
        d1 in 2u32..40,
        d2 in 2u32..40,
        nnz in 1usize..500,
        rank in 1usize..20,
        workers in 1usize..32,
        mode in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let (t, fs) = setup(vec![d0, d1, d2], nnz, rank, seed);
        // Cold: compile and run at one worker.
        let cold_shard = compile(&t, mode);
        let cold = run_compiled(&cold_shard, &t, &fs, 1, 32);
        // Warm: reuse an already-compiled layout at an arbitrary worker
        // count — the shape the engines' caches execute every iteration
        // after the first.
        let warm_shard = compile(&t, mode);
        let first = run_compiled(&warm_shard, &t, &fs, workers, 32);
        let warm = run_compiled(&warm_shard, &t, &fs, workers, 32);
        for (i, ((c, f), w)) in cold.iter().zip(&first).zip(&warm).enumerate() {
            prop_assert_eq!(
                c.to_bits(), f.to_bits(),
                "cell {}: 1 worker {} vs {} workers {}", i, c, workers, f
            );
            prop_assert_eq!(
                f.to_bits(), w.to_bits(),
                "cell {}: cold {} vs warm-cache {}", i, f, w
            );
        }
    }

    /// Rank blocking tiles the factor-column loop but never reorders any
    /// cell's accumulation over elements, so every tile width produces the
    /// same bits — which, for the compiled path, are the sequential
    /// reference's bits.
    #[test]
    fn compiled_rank_chunk_is_numerics_transparent(
        d0 in 2u32..40,
        d1 in 2u32..40,
        d2 in 2u32..40,
        nnz in 1usize..400,
        rank in 1usize..48,
        rc_idx in 0usize..4,
        mode in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let rank_chunk = [1usize, 8, 32, 256][rc_idx];
        let (t, fs) = setup(vec![d0, d1, d2], nnz, rank, seed);
        let shard = compile(&t, mode);
        let got = run_compiled(&shard, &t, &fs, 4, rank_chunk);
        let want = mttkrp_ref(&t, &fs, mode);
        for (i, (g, w)) in got.iter().zip(want.as_slice()).enumerate() {
            prop_assert_eq!(
                g.to_bits(), w.to_bits(),
                "cell {}: rank_chunk={} gives {} vs reference {}", i, rank_chunk, g, w
            );
        }
    }
}
