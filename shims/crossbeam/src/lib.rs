//! Offline stand-in for `crossbeam`, providing the scoped-thread API the
//! workspace uses (`crossbeam::thread::scope` + `Scope::spawn`) on top of
//! `std::thread::scope`.
//!
//! Semantics match crossbeam 0.8: `scope` returns `Err` (instead of
//! panicking) when a spawned thread panics and its handle was not joined, so
//! call sites can `.unwrap()` / `.expect()` to surface worker panics.

#![warn(missing_docs)]

#[cfg(feature = "check")]
pub use interleave as check;

/// Scoped threads (stand-in for `crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Payload of a propagated panic.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle: spawn threads that may borrow from the enclosing
    /// stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope itself (for nested spawns); most callers ignore
        /// it (`|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-stack threads can be spawned;
    /// joins all unjoined threads before returning. Returns `Err` with the
    /// panic payload if the closure or any unjoined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_see_borrowed_state() {
        let counter = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = thread::scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn panic_in_unjoined_thread_becomes_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("worker died"));
        });
        assert!(r.is_err());
    }
}
