//! Loom-lite bounded interleaving explorer.
//!
//! A deterministic, exhaustive-up-to-a-bound schedule explorer for small
//! concurrent protocols, in the spirit of `loom` but vendored offline and
//! deliberately minimal. A *model* is a closure that builds some shared
//! state out of this crate's instrumented primitives ([`AtomicUsize`],
//! [`AtomicBool`], [`OnceSlot`], [`Channel`]) and runs a handful of threads
//! over it through [`Trial::run`]. The [`Explorer`] executes the model once
//! per distinct schedule:
//!
//! * Execution is **serialized**: exactly one modeled thread runs at a time,
//!   and every instrumented operation is a *scheduling point* where the
//!   explorer may switch threads. This explores every interleaving of the
//!   instrumented operations under sequential consistency.
//! * Exploration is **depth-first with replay**: each run records the
//!   choice made at every scheduling point with more than one runnable
//!   thread; after the run, the deepest choice with an untried alternative
//!   is bumped and the model re-runs from scratch with that prefix. When no
//!   alternative remains the state space is exhausted ([`Report::complete`]).
//! * **Deadlocks are detected**, not hung on: if every unfinished thread is
//!   blocked on a [`Channel`], the run aborts and the explorer panics with
//!   the offending schedule. Model assertion failures propagate the same
//!   way, annotated with the schedule that produced them.
//!
//! What this does *not* model (see DESIGN.md §14): weak memory. Operations
//! are explored under sequential consistency, so `Ordering::Relaxed`
//! reorderings are invisible here — which is exactly why the workspace lint
//! demands a written happens-before justification at every `Relaxed` site
//! on top of these schedule proofs.
//!
//! Outside an exploration the primitives degrade to their plain `std`
//! behaviour (one thread-local check per operation), so model helper code
//! can be unit-tested directly.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload used internally to unwind modeled threads when a run is
/// aborted (deadlock, step bound, or another thread's panic). Never escapes
/// [`Trial::run`].
struct AbortToken;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Ready to be granted the execution token.
    Runnable,
    /// Parked on a [`Channel`] until a sender wakes it.
    Blocked,
    /// Returned from its closure (or unwound).
    Finished,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Abort {
    /// Every unfinished thread was blocked: no schedule can make progress.
    Deadlock,
    /// The run exceeded the step bound (a runaway model loop).
    StepBound,
    /// A modeled thread panicked (model assertion failure).
    ModelPanic,
}

/// One recorded scheduling decision: the runnable set at that point and the
/// index (into `enabled`) that was chosen. Only points with more than one
/// runnable thread are recorded — single-choice points are deterministic.
#[derive(Clone, Debug)]
struct ChoicePoint {
    enabled: Vec<usize>,
    chosen: usize,
}

struct State {
    status: Vec<Status>,
    /// Thread currently holding the execution token (`None` while aborting
    /// or when the run is over).
    current: Option<usize>,
    /// Choice-index prefix to replay this run (one entry per multi-choice
    /// scheduling point, in order).
    replay: Vec<usize>,
    /// Decisions actually taken this run.
    trace: Vec<ChoicePoint>,
    /// Next replay position.
    pos: usize,
    abort: Option<Abort>,
    /// First real panic payload from a modeled thread.
    panic_payload: Option<Box<dyn std::any::Any + Send + 'static>>,
    steps: usize,
    max_steps: usize,
}

/// The per-run cooperative scheduler: a single execution token handed from
/// thread to thread at instrumented operations.
struct Sched {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    /// The scheduler the current OS thread is modeled under, if any.
    static CURRENT: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

/// Runs `f` with the calling thread's scheduler handle, or returns `None`
/// when the thread is not part of an exploration (passthrough mode).
fn with_sched<R>(f: impl FnOnce(&Arc<Sched>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(s, tid)| f(s, *tid)))
}

impl Sched {
    fn new(threads: usize, replay: Vec<usize>, max_steps: usize) -> Self {
        Self {
            state: Mutex::new(State {
                status: vec![Status::Runnable; threads],
                current: None,
                replay,
                trace: Vec::new(),
                pos: 0,
                abort: None,
                panic_payload: None,
                steps: 0,
                max_steps,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A poisoned scheduler mutex means a panic is already unwinding
        // through an aborting run; propagating it here would mask the
        // original failure, so take the inner state anyway.
        self.state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Picks the next thread to run (with the state lock held) and records
    /// the decision when there was a real choice. Sets `current = None` on
    /// completion or deadlock.
    fn pick_locked(&self, st: &mut State) {
        if st.abort.is_some() {
            st.current = None;
            return;
        }
        let enabled: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.status.iter().all(|s| *s == Status::Finished) {
                st.current = None; // run over
            } else {
                // Deadlock: unfinished threads exist but none can run.
                st.abort = Some(Abort::Deadlock);
                for s in st.status.iter_mut() {
                    if *s == Status::Blocked {
                        *s = Status::Runnable; // release them to unwind
                    }
                }
                st.current = None;
            }
            return;
        }
        let chosen = if enabled.len() == 1 {
            enabled[0]
        } else {
            let idx = if st.pos < st.replay.len() {
                st.replay[st.pos]
            } else {
                0
            };
            st.pos += 1;
            st.trace.push(ChoicePoint {
                enabled: enabled.clone(),
                chosen: idx,
            });
            enabled[idx]
        };
        st.current = Some(chosen);
    }

    /// Panics with the internal abort token (unwinds the modeled thread).
    fn abort_unwind(&self) -> ! {
        std::panic::panic_any(AbortToken);
    }

    /// Waits until thread `me` holds the execution token.
    fn wait_for_grant(&self, me: usize) {
        let mut st = self.lock();
        loop {
            if st.abort.is_some() {
                drop(st);
                self.abort_unwind();
            }
            if st.current == Some(me) {
                return;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    /// A scheduling point: offer the token to every runnable thread
    /// (including `me`) and wait until `me` is granted again.
    fn yield_point(&self, me: usize) {
        {
            let mut st = self.lock();
            if st.abort.is_some() {
                drop(st);
                self.abort_unwind();
            }
            st.steps += 1;
            if st.steps > st.max_steps {
                st.abort = Some(Abort::StepBound);
                st.current = None;
                drop(st);
                self.cv.notify_all();
                self.abort_unwind();
            }
            st.status[me] = Status::Runnable;
            self.pick_locked(&mut st);
        }
        self.cv.notify_all();
        self.wait_for_grant(me);
    }

    /// Parks thread `me` until another thread wakes it ([`Sched::wake`])
    /// and the scheduler grants it the token again.
    fn block_self(&self, me: usize) {
        {
            let mut st = self.lock();
            if st.abort.is_some() {
                drop(st);
                self.abort_unwind();
            }
            st.status[me] = Status::Blocked;
            self.pick_locked(&mut st);
        }
        self.cv.notify_all();
        self.wait_for_grant(me);
    }

    /// Marks `tids` runnable again (a channel send waking its waiters).
    /// Called by the thread holding the token; no reschedule happens here —
    /// the woken threads compete at the waker's next scheduling point.
    fn wake(&self, tids: &[usize]) {
        let mut st = self.lock();
        for &t in tids {
            if st.status[t] == Status::Blocked {
                st.status[t] = Status::Runnable;
            }
        }
    }

    /// Marks thread `me` finished and hands the token onward. `payload` is
    /// the thread's panic payload, if it panicked with a real error.
    fn thread_done(&self, me: usize, payload: Option<Box<dyn std::any::Any + Send + 'static>>) {
        {
            let mut st = self.lock();
            st.status[me] = Status::Finished;
            if let Some(p) = payload {
                if st.abort.is_none() {
                    st.abort = Some(Abort::ModelPanic);
                    st.panic_payload = Some(p);
                    for s in st.status.iter_mut() {
                        if *s == Status::Blocked {
                            *s = Status::Runnable; // release to unwind
                        }
                    }
                }
                st.current = None;
            } else {
                self.pick_locked(&mut st);
            }
        }
        self.cv.notify_all();
    }

    /// Controller-side: performs the first scheduling decision of the run.
    fn initial_pick(&self) {
        {
            let mut st = self.lock();
            self.pick_locked(&mut st);
        }
        self.cv.notify_all();
    }

    /// Controller-side: waits until every modeled thread has finished.
    fn wait_all_done(&self) {
        let mut st = self.lock();
        while !st.status.iter().all(|s| *s == Status::Finished) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

/// Outcome of one whole exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// True when the bounded state space was exhausted (every interleaving
    /// of the instrumented operations was run); false when the exploration
    /// stopped at [`Explorer::max_schedules`] first.
    pub complete: bool,
    /// Longest choice trace seen across all schedules (a depth measure).
    pub max_choice_points: usize,
    /// Deadlocked schedules seen (always 0 unless
    /// [`Explorer::fail_on_deadlock`] was turned off).
    pub deadlocks: usize,
}

/// One run of the model under a fixed schedule prefix. Handed to the model
/// closure; the model builds its shared state, then calls [`Trial::run`].
pub struct Trial {
    replay: Vec<usize>,
    max_steps: usize,
    fail_on_deadlock: bool,
    /// Trace of the just-finished run (for the explorer's backtracking).
    trace: RefCell<Vec<ChoicePoint>>,
    deadlocked: RefCell<bool>,
}

impl Trial {
    /// Runs `threads` to completion under the trial's schedule, one closure
    /// per modeled thread. Instrumented operations inside the closures are
    /// the scheduling points. Returns when every thread has finished.
    ///
    /// # Panics
    /// Propagates the first modeled-thread panic (model assertion failures),
    /// annotated with the schedule. Deadlocks and step-bound overruns are
    /// reported to the explorer, which panics with the schedule after the
    /// run unless configured otherwise.
    pub fn run<'env>(&self, threads: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let sched = Arc::new(Sched::new(
            threads.len(),
            self.replay.clone(),
            self.max_steps,
        ));
        std::thread::scope(|scope| {
            for (tid, f) in threads.into_iter().enumerate() {
                let sched = sched.clone();
                scope.spawn(move || {
                    CURRENT.with(|c| *c.borrow_mut() = Some((sched.clone(), tid)));
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        sched.wait_for_grant(tid);
                        f();
                    }));
                    CURRENT.with(|c| *c.borrow_mut() = None);
                    let payload = match result {
                        Ok(()) => None,
                        // The abort token is harness plumbing, not a model
                        // failure; anything else is the model's own panic.
                        Err(p) if p.is::<AbortToken>() => None,
                        Err(p) => Some(p),
                    };
                    sched.thread_done(tid, payload);
                });
            }
            sched.initial_pick();
            sched.wait_all_done();
        });
        let mut st = sched.lock();
        *self.trace.borrow_mut() = std::mem::take(&mut st.trace);
        match st.abort {
            Some(Abort::ModelPanic) => {
                let payload = st.panic_payload.take().expect("model panic stored");
                drop(st);
                eprintln!(
                    "interleave: model panicked under schedule {:?}",
                    self.schedule_digest()
                );
                resume_unwind(payload);
            }
            Some(Abort::Deadlock) => {
                *self.deadlocked.borrow_mut() = true;
                if self.fail_on_deadlock {
                    drop(st);
                    // Fail before the model's post-run assertions see the
                    // partial state a deadlocked run leaves behind.
                    panic!(
                        "interleave: deadlock under schedule {:?}",
                        self.schedule_digest()
                    );
                }
            }
            Some(Abort::StepBound) => {
                drop(st);
                panic!(
                    "interleave: step bound exceeded under schedule {:?} \
                     (runaway model loop?)",
                    self.schedule_digest()
                );
            }
            None => {}
        }
    }

    /// The choice indices taken this run (for failure messages).
    fn schedule_digest(&self) -> Vec<usize> {
        self.trace.borrow().iter().map(|c| c.chosen).collect()
    }

    /// Whether this trial's run deadlocked (only observable when the
    /// explorer was configured with `fail_on_deadlock = false`).
    pub fn deadlocked(&self) -> bool {
        *self.deadlocked.borrow()
    }
}

/// The bounded DFS explorer. Configure, then [`Explorer::explore`] a model.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// Stop after this many schedules even if the space is not exhausted.
    pub max_schedules: usize,
    /// Per-run scheduling-point budget (guards against runaway loops).
    pub max_steps: usize,
    /// Panic on the first deadlocked schedule (default `true`). When
    /// `false`, deadlocks are only counted — for tests that *expect* them.
    pub fail_on_deadlock: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            max_schedules: 10_000,
            max_steps: 100_000,
            fail_on_deadlock: true,
        }
    }
}

impl Explorer {
    /// An explorer that stops after `max_schedules` distinct schedules.
    pub fn new(max_schedules: usize) -> Self {
        Self {
            max_schedules,
            ..Self::default()
        }
    }

    /// Runs `model` once per distinct schedule until the bounded state
    /// space is exhausted or [`Explorer::max_schedules`] is reached. The
    /// model must build fresh state each call and run its threads through
    /// the given [`Trial`].
    ///
    /// # Panics
    /// On the first deadlocked schedule (unless [`Explorer::fail_on_deadlock`]
    /// is false), on a step-bound overrun, or on any model panic.
    pub fn explore(&self, mut model: impl FnMut(&Trial)) -> Report {
        let mut replay: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        let mut max_choice_points = 0usize;
        let mut deadlocks = 0usize;
        loop {
            let trial = Trial {
                replay: replay.clone(),
                max_steps: self.max_steps,
                fail_on_deadlock: self.fail_on_deadlock,
                trace: RefCell::new(Vec::new()),
                deadlocked: RefCell::new(false),
            };
            model(&trial);
            schedules += 1;
            let trace = trial.trace.borrow();
            max_choice_points = max_choice_points.max(trace.len());
            if *trial.deadlocked.borrow() {
                deadlocks += 1;
            }
            // Backtrack: bump the deepest choice with an untried alternative.
            let next = trace
                .iter()
                .rposition(|c| c.chosen + 1 < c.enabled.len())
                .map(|i| {
                    let mut r: Vec<usize> = trace[..i].iter().map(|c| c.chosen).collect();
                    r.push(trace[i].chosen + 1);
                    r
                });
            drop(trace);
            match next {
                Some(r) if schedules < self.max_schedules => replay = r,
                Some(_) => {
                    return Report {
                        schedules,
                        complete: false,
                        max_choice_points,
                        deadlocks,
                    }
                }
                None => {
                    return Report {
                        schedules,
                        complete: true,
                        max_choice_points,
                        deadlocks,
                    };
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Instrumented primitives
// ---------------------------------------------------------------------------

/// An instrumented `usize` atomic: every operation is a scheduling point
/// when run under an [`Explorer`], a plain sequentially-consistent atomic
/// operation otherwise.
#[derive(Debug, Default)]
pub struct AtomicUsize {
    // The model executes under the scheduler's single-token serialization,
    // so SeqCst here is free and keeps the passthrough mode strongest.
    inner: std::sync::atomic::AtomicUsize,
}

impl AtomicUsize {
    /// A new atomic holding `v`.
    pub fn new(v: usize) -> Self {
        Self {
            inner: std::sync::atomic::AtomicUsize::new(v),
        }
    }

    /// Atomically adds `v`, returning the previous value. One scheduling
    /// point (the whole RMW is one indivisible step, as on hardware).
    pub fn fetch_add(&self, v: usize) -> usize {
        let _ = with_sched(|s, me| s.yield_point(me));
        self.inner.fetch_add(v, std::sync::atomic::Ordering::SeqCst)
    }

    /// Atomic load. One scheduling point.
    pub fn load(&self) -> usize {
        let _ = with_sched(|s, me| s.yield_point(me));
        self.inner.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Atomic store. One scheduling point.
    pub fn store(&self, v: usize) {
        let _ = with_sched(|s, me| s.yield_point(me));
        self.inner.store(v, std::sync::atomic::Ordering::SeqCst)
    }

    /// Atomic compare-exchange. One scheduling point for the whole RMW.
    pub fn compare_exchange(&self, current: usize, new: usize) -> Result<usize, usize> {
        let _ = with_sched(|s, me| s.yield_point(me));
        self.inner.compare_exchange(
            current,
            new,
            std::sync::atomic::Ordering::SeqCst,
            std::sync::atomic::Ordering::SeqCst,
        )
    }

    /// Non-instrumented read for post-run assertions (all threads joined).
    pub fn into_value(self) -> usize {
        self.inner.into_inner()
    }
}

/// An instrumented boolean flag (see [`AtomicUsize`]).
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// A new flag holding `v`.
    pub fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    /// Atomic load. One scheduling point.
    pub fn load(&self) -> bool {
        let _ = with_sched(|s, me| s.yield_point(me));
        self.inner.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Atomic store. One scheduling point.
    pub fn store(&self, v: bool) {
        let _ = with_sched(|s, me| s.yield_point(me));
        self.inner.store(v, std::sync::atomic::Ordering::SeqCst)
    }

    /// Atomically swaps in `v`, returning the previous value.
    pub fn swap(&self, v: bool) -> bool {
        let _ = with_sched(|s, me| s.yield_point(me));
        self.inner.swap(v, std::sync::atomic::Ordering::SeqCst)
    }
}

/// An instrumented write-once slot — the model-side stand-in for
/// `std::sync::OnceLock` in the `plan_modes` protocol. `set` returns whether
/// this call installed the value (exactly one caller wins).
#[derive(Debug, Default)]
pub struct OnceSlot<T> {
    inner: Mutex<Option<T>>,
}

impl<T> OnceSlot<T> {
    /// An empty slot.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(None),
        }
    }

    /// Installs `v` if the slot is empty; returns `false` (dropping `v`)
    /// when a value is already present. One scheduling point.
    pub fn set(&self, v: T) -> bool {
        let _ = with_sched(|s, me| s.yield_point(me));
        let mut slot = self
            .inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if slot.is_some() {
            false
        } else {
            *slot = Some(v);
            true
        }
    }

    /// Whether a value has been installed. One scheduling point.
    pub fn is_set(&self) -> bool {
        let _ = with_sched(|s, me| s.yield_point(me));
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .is_some()
    }

    /// Non-instrumented extraction for post-run assertions.
    pub fn into_value(self) -> Option<T> {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// Error returned by [`Channel::recv`] once the channel is closed and empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

struct ChannelInner<T> {
    queue: VecDeque<T>,
    closed: bool,
    /// Modeled threads parked in `recv`.
    waiters: Vec<usize>,
}

/// An instrumented MPSC-style channel — the model-side stand-in for
/// `std::sync::mpsc` in the prefetch-handshake protocol. `send` never
/// blocks; `recv` parks the modeled thread until a value or close arrives
/// (a real scheduling dependency the explorer's deadlock detector watches).
pub struct Channel<T> {
    inner: Mutex<ChannelInner<T>>,
}

impl<T> Default for Channel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Channel<T> {
    /// A new open, empty channel.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(ChannelInner {
                queue: VecDeque::new(),
                closed: false,
                waiters: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChannelInner<T>> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Sends `v` (never blocks) and wakes parked receivers. One scheduling
    /// point.
    pub fn send(&self, v: T) {
        let _ = with_sched(|s, me| s.yield_point(me));
        let waiters = {
            let mut ch = self.lock();
            ch.queue.push_back(v);
            std::mem::take(&mut ch.waiters)
        };
        if !waiters.is_empty() {
            let _ = with_sched(|s, _| s.wake(&waiters));
        }
    }

    /// Closes the channel: pending values stay receivable, then `recv`
    /// returns [`RecvError`]. Wakes parked receivers. One scheduling point.
    pub fn close(&self) {
        let _ = with_sched(|s, me| s.yield_point(me));
        let waiters = {
            let mut ch = self.lock();
            ch.closed = true;
            std::mem::take(&mut ch.waiters)
        };
        if !waiters.is_empty() {
            let _ = with_sched(|s, _| s.wake(&waiters));
        }
    }

    /// Receives the next value, parking the modeled thread while the
    /// channel is open and empty. Outside an exploration this spins (the
    /// passthrough mode is only meant for already-sent values in unit
    /// tests).
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            let parked = {
                let mut ch = self.lock();
                if let Some(v) = ch.queue.pop_front() {
                    return Ok(v);
                }
                if ch.closed {
                    return Err(RecvError);
                }
                with_sched(|_, me| ch.waiters.push(me)).is_some()
            };
            if parked {
                // Park until a sender wakes us; the loop re-checks the
                // queue after every grant.
                let _ = with_sched(|s, me| s.block_self(me));
            } else {
                // Passthrough mode: busy-wait (caller owns both ends).
                std::thread::yield_now();
            }
        }
    }

    /// Non-blocking receive: `Some(v)` when a value is queued. One
    /// scheduling point.
    pub fn try_recv(&self) -> Option<T> {
        let _ = with_sched(|s, me| s.yield_point(me));
        self.lock().queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_add_never_loses_updates() {
        let report = Explorer::new(5_000).explore(|t| {
            let counter = AtomicUsize::new(0);
            t.run(vec![
                Box::new(|| {
                    counter.fetch_add(1);
                }),
                Box::new(|| {
                    counter.fetch_add(1);
                }),
            ]);
            assert_eq!(counter.load(), 2);
        });
        assert!(report.complete, "two-op model must be exhaustible");
        assert!(report.schedules >= 2);
    }

    #[test]
    fn explorer_finds_the_lost_update_race() {
        // A deliberately racy read-modify-write: some schedule must lose an
        // update, proving the explorer actually interleaves at operation
        // granularity rather than running threads to completion.
        let mut lost = false;
        let report = Explorer::new(5_000).explore(|t| {
            let counter = AtomicUsize::new(0);
            let racy = || {
                let v = counter.load();
                counter.store(v + 1);
            };
            t.run(vec![Box::new(racy), Box::new(racy)]);
            if counter.load() == 1 {
                lost = true;
            }
        });
        assert!(report.complete);
        assert!(lost, "exploration must expose the lost-update schedule");
        assert!(report.schedules > 2);
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        // Two threads each waiting on a channel only the other could fill.
        let result = catch_unwind(AssertUnwindSafe(|| {
            Explorer::new(100).explore(|t| {
                let a: Channel<u8> = Channel::new();
                let b: Channel<u8> = Channel::new();
                t.run(vec![
                    Box::new(|| {
                        let _ = a.recv();
                        b.send(1);
                    }),
                    Box::new(|| {
                        let _ = b.recv();
                        a.send(1);
                    }),
                ]);
            });
        }));
        let payload = result.expect_err("circular wait must be reported");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
    }

    #[test]
    fn channel_delivers_in_order_across_schedules() {
        let report = Explorer::new(5_000).explore(|t| {
            let ch: Channel<usize> = Channel::new();
            let got = Mutex::new(Vec::new());
            t.run(vec![
                Box::new(|| {
                    ch.send(1);
                    ch.send(2);
                    ch.close();
                }),
                Box::new(|| {
                    while let Ok(v) = ch.recv() {
                        got.lock().unwrap().push(v);
                    }
                }),
            ]);
            assert_eq!(*got.lock().unwrap(), vec![1, 2], "FIFO per sender");
        });
        assert!(report.complete);
        assert!(report.schedules >= 2);
    }

    #[test]
    fn once_slot_has_exactly_one_winner() {
        let report = Explorer::new(5_000).explore(|t| {
            let slot: OnceSlot<usize> = OnceSlot::new();
            let wins = AtomicUsize::new(0);
            t.run(vec![
                Box::new(|| {
                    if slot.set(1) {
                        wins.fetch_add(1);
                    }
                }),
                Box::new(|| {
                    if slot.set(2) {
                        wins.fetch_add(1);
                    }
                }),
            ]);
            assert_eq!(wins.load(), 1, "exactly one set() may win");
            assert!(slot.is_set());
        });
        assert!(report.complete);
    }

    #[test]
    fn model_panic_carries_through_with_schedule() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Explorer::new(100).explore(|t| {
                let x = AtomicUsize::new(0);
                t.run(vec![
                    Box::new(|| {
                        x.store(1);
                    }),
                    Box::new(|| {
                        if x.load() == 1 {
                            panic!("observed the store");
                        }
                    }),
                ]);
            });
        }));
        assert!(result.is_err(), "some schedule observes the store");
    }

    #[test]
    fn passthrough_mode_works_without_an_explorer() {
        let a = AtomicUsize::new(5);
        assert_eq!(a.fetch_add(2), 5);
        assert_eq!(a.load(), 7);
        let ch = Channel::new();
        ch.send(9);
        assert_eq!(ch.recv(), Ok(9));
        ch.close();
        assert_eq!(ch.recv(), Err(RecvError));
        let slot = OnceSlot::new();
        assert!(slot.set(3));
        assert!(!slot.set(4));
        assert_eq!(slot.into_value(), Some(3));
    }

    #[test]
    fn max_schedules_bounds_the_search() {
        // Enough racy ops that the space exceeds the bound.
        let report = Explorer::new(10).explore(|t| {
            let c = AtomicUsize::new(0);
            let busy = || {
                for _ in 0..4 {
                    c.fetch_add(1);
                }
            };
            t.run(vec![Box::new(busy), Box::new(busy), Box::new(busy)]);
        });
        assert_eq!(report.schedules, 10);
        assert!(!report.complete);
    }
}
