//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! one capability the workspace uses: `#[derive(Serialize)]` on plain structs
//! and unit-variant enums, consumed by the sibling `serde_json` shim. Instead
//! of the real visitor-based data model, [`Serialize`] converts directly into
//! the [`Json`] value tree, which `serde_json` renders.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Let the derive's generated `::serde::...` paths resolve inside this crate
// itself (used by the unit tests below).
extern crate self as serde;

/// Derive macro generating [`Serialize`] impls for structs with named fields
/// and enums with unit variants.
pub use serde_derive::Serialize;

/// An owned JSON value tree (object keys preserve insertion order).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; rendered without a trailing `.0` when integral.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Conversion into the [`Json`] value tree.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl Serialize for () {
    fn to_json(&self) -> Json {
        Json::Null
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("start".to_string(), self.start.to_json()),
            ("end".to_string(), self.end.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Point {
        x: f64,
        y: f64,
        label: String,
    }

    #[derive(Serialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[derive(Serialize)]
    struct Wrapper<'a, T: Serialize> {
        inner: &'a T,
        kinds: Vec<Kind>,
    }

    #[test]
    fn derive_struct_preserves_field_order() {
        let p = Point {
            x: 1.0,
            y: 2.0,
            label: "a".into(),
        };
        match p.to_json() {
            Json::Obj(fields) => {
                let names: Vec<_> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(names, ["x", "y", "label"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn derive_unit_enum_serializes_as_name() {
        assert_eq!(Kind::Beta.to_json(), Json::Str("Beta".into()));
    }

    #[test]
    fn derive_generic_struct_with_bounds() {
        let p = Point {
            x: 0.0,
            y: 0.0,
            label: String::new(),
        };
        let w = Wrapper {
            inner: &p,
            kinds: vec![Kind::Alpha],
        };
        match w.to_json() {
            Json::Obj(fields) => assert_eq!(fields.len(), 2),
            other => panic!("expected object, got {other:?}"),
        }
    }
}
