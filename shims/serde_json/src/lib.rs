//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree as JSON text, plus the [`json!`] macro subset the workspace uses
//! (`json!({ "key": expr, ... })`, `json!(expr)`, `json!(null)`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;

/// Re-export of the serde shim's value tree under its `serde_json` name.
pub use serde::Json as Value;

/// Error type for serialization. The shim's conversion is total, so this is
/// never produced in practice, but the signatures match call sites expecting
/// `Result`.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any [`Serialize`] value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree (recursive descent over the
/// subset this workspace writes: objects, arrays, strings with `\"`/`\\`/
/// `\n`/`\t`/`\r`/`\uXXXX` escapes, numbers, booleans, null).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected '{}' at byte {}", c as char, *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {}", *pos))),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {}", *pos))),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| Error(format!("invalid number at byte {start}")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex4 = |at: usize| {
                            b.get(at..at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                        };
                        let mut code = hex4(*pos + 1)
                            .ok_or_else(|| Error(format!("bad \\u escape at byte {}", *pos)))?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: JSON encodes non-BMP chars as
                            // a \uXXXX\uXXXX UTF-16 pair.
                            if b.get(*pos + 1..*pos + 3) == Some(b"\\u") {
                                match hex4(*pos + 3) {
                                    Some(low) if (0xDC00..0xE000).contains(&low) => {
                                        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        *pos += 6;
                                    }
                                    _ => {}
                                }
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(Error(format!("bad escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            _ => {
                // Copy everything up to the next delimiter in one slice —
                // '"' and '\\' are ASCII, so the cut is always on a UTF-8
                // character boundary and each input byte is visited once
                // (per-character tail revalidation would be quadratic).
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| Error(format!("invalid UTF-8 at byte {start}")))?;
                out.push_str(run);
            }
        }
    }
    Err(Error("unterminated string".into()))
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(&render_number(*n)),
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render_string(k, out);
                out.push_str(colon);
                render(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

fn render_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; real serde_json refuses them for floats.
        // Render null like serde_json's lossy writers do.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Subset of `serde_json::json!`: object literals with string-literal keys and
/// expression values, bare `null`, and arbitrary `Serialize` expressions.
#[macro_export]
macro_rules! json {
    ( null ) => { $crate::Value::Null };
    ( { $( $k:literal : $v:expr ),* $(,)? } ) => {
        $crate::Value::Obj(vec![
            $( (::std::string::String::from($k), $crate::to_value(&$v)) ),*
        ])
    };
    ( [ $( $v:expr ),* $(,)? ] ) => {
        $crate::Value::Arr(vec![ $( $crate::to_value(&$v) ),* ])
    };
    ( $e:expr ) => { $crate::to_value(&$e) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let b = Value::Arr(vec![Value::Bool(true), Value::Null]);
        let v = json!({ "a": 1, "b": b, "c": "x\"y" });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[true,null],"c":"x\"y"}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = json!({ "a": 1 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn numbers_render_integrally_when_integral() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(to_string(&3.5f64).unwrap(), "3.5");
        assert_eq!(to_string(&42u64).unwrap(), "42");
    }

    #[test]
    fn json_macro_accepts_expressions() {
        let xs: Vec<Value> = (0..3).map(|i| json!({ "i": i })).collect();
        let v = json!(xs);
        assert_eq!(to_string(&v).unwrap(), r#"[{"i":0},{"i":1},{"i":2}]"#);
    }

    #[test]
    fn empty_containers() {
        let v = json!({ "a": Vec::<u32>::new() });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": []\n}");
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let b = Value::Arr(vec![
            Value::Bool(true),
            Value::Null,
            Value::Str("x\"y\\z".into()),
        ]);
        let c = Value::Obj(vec![("d".into(), Value::Num(2.5))]);
        let v = json!({ "a": 1, "b": b, "c": c });
        for render in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = from_str(&render).unwrap();
            assert_eq!(to_string(&back).unwrap(), to_string(&v).unwrap());
        }
    }

    #[test]
    fn parse_handles_escapes_and_numbers() {
        let v = from_str(r#"{"s":"a\nb","n":-1.5e2,"e":[]}"#).unwrap();
        match &v {
            Value::Obj(fields) => {
                assert_eq!(fields[0].1, Value::Str("a\nb".into()));
                assert_eq!(fields[1].1, Value::Num(-150.0));
                assert_eq!(fields[2].1, Value::Arr(vec![]));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn parse_decodes_surrogate_pairs() {
        // \uD83D\uDE00 is the UTF-16 pair for U+1F600 (grinning face).
        let v = from_str(r#""\uD83D\uDE00 ok \u00e9""#).unwrap();
        assert_eq!(v, Value::Str("\u{1F600} ok \u{e9}".into()));
        // A lone high surrogate degrades to U+FFFD instead of corrupting.
        assert_eq!(
            from_str(r#""\uD83Dx""#).unwrap(),
            Value::Str("\u{fffd}x".into())
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"open").is_err());
    }
}
