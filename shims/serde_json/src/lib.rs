//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree as JSON text, plus the [`json!`] macro subset the workspace uses
//! (`json!({ "key": expr, ... })`, `json!(expr)`, `json!(null)`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;

/// Re-export of the serde shim's value tree under its `serde_json` name.
pub use serde::Json as Value;

/// Error type for serialization. The shim's conversion is total, so this is
/// never produced in practice, but the signatures match call sites expecting
/// `Result`.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any [`Serialize`] value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(&render_number(*n)),
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                render_string(k, out);
                out.push_str(colon);
                render(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

fn render_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; real serde_json refuses them for floats.
        // Render null like serde_json's lossy writers do.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Subset of `serde_json::json!`: object literals with string-literal keys and
/// expression values, bare `null`, and arbitrary `Serialize` expressions.
#[macro_export]
macro_rules! json {
    ( null ) => { $crate::Value::Null };
    ( { $( $k:literal : $v:expr ),* $(,)? } ) => {
        $crate::Value::Obj(vec![
            $( (::std::string::String::from($k), $crate::to_value(&$v)) ),*
        ])
    };
    ( [ $( $v:expr ),* $(,)? ] ) => {
        $crate::Value::Arr(vec![ $( $crate::to_value(&$v) ),* ])
    };
    ( $e:expr ) => { $crate::to_value(&$e) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let b = Value::Arr(vec![Value::Bool(true), Value::Null]);
        let v = json!({ "a": 1, "b": b, "c": "x\"y" });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[true,null],"c":"x\"y"}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = json!({ "a": 1 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn numbers_render_integrally_when_integral() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(to_string(&3.5f64).unwrap(), "3.5");
        assert_eq!(to_string(&42u64).unwrap(), "42");
    }

    #[test]
    fn json_macro_accepts_expressions() {
        let xs: Vec<Value> = (0..3).map(|i| json!({ "i": i })).collect();
        let v = json!(xs);
        assert_eq!(to_string(&v).unwrap(), r#"[{"i":0},{"i":1},{"i":2}]"#);
    }

    #[test]
    fn empty_containers() {
        let v = json!({ "a": Vec::<u32>::new() });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": []\n}");
    }
}
