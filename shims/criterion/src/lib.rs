//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-group API surface the workspace's five bench
//! targets use — [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`Throughput`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with plain wall-clock
//! measurement instead of criterion's statistical machinery.
//!
//! Modes (from CLI args, which cargo passes through after `--`):
//!
//! * `--test`: smoke mode — every benchmark body runs exactly once and only
//!   pass/fail is reported (this is what `cargo bench -- --test` does in real
//!   criterion too).
//! * default: each benchmark is warmed up once, then timed for a short fixed
//!   window; mean time per iteration and derived throughput are printed.
//!
//! If the `CRITERION_SHIM_JSON` environment variable names a file, one JSON
//! record per benchmark is appended to it (used to snapshot baselines).

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// Creates an id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.param {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
            param: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self {
            name: s,
            param: None,
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Measured mean nanoseconds per iteration (filled by `iter`).
    mean_ns: f64,
    iters: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Smoke,
    Timed,
}

impl Bencher {
    /// Runs the routine: once in smoke mode, or repeatedly for a short
    /// measurement window in timed mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            self.mean_ns = 0.0;
            self.iters = 1;
            return;
        }
        // Warm-up: one untimed call (also primes caches/allocations).
        black_box(routine());
        let window = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < window && iters < 1_000_000 {
            black_box(routine());
            iters += 1;
        }
        let total = start.elapsed();
        self.iters = iters.max(1);
        self.mean_ns = total.as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes its own windows.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes its own windows.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            mode: self.criterion.mode,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id.render());
        match self.criterion.mode {
            Mode::Smoke => println!("test {full} ... ok"),
            Mode::Timed => {
                let rate = self.throughput.map(|t| match t {
                    Throughput::Bytes(n) => {
                        format!(
                            "  thrpt: {:.3} GiB/s",
                            n as f64 / b.mean_ns * 1e9 / (1u64 << 30) as f64
                        )
                    }
                    Throughput::Elements(n) => {
                        format!("  thrpt: {:.3} Melem/s", n as f64 / b.mean_ns * 1e9 / 1e6)
                    }
                });
                println!(
                    "{full:<50} time: {}{} ({} iters)",
                    fmt_ns(b.mean_ns),
                    rate.unwrap_or_default(),
                    b.iters
                );
                self.criterion
                    .record(&full, b.mean_ns, b.iters, self.throughput);
            }
        }
    }

    /// Ends the group (printed output only; nothing to flush per-group).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    mode: Mode,
    json_out: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: Mode::Timed,
            json_out: std::env::var_os("CRITERION_SHIM_JSON").map(Into::into),
        }
    }
}

impl Criterion {
    /// Applies CLI arguments (`--test` selects smoke mode; everything else
    /// criterion accepts is tolerated and ignored).
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.mode = Mode::Smoke;
        }
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: std::env::args().next().unwrap_or_else(|| "bench".into()),
            criterion: self,
            throughput: None,
        };
        let id = id.into();
        g.run(&id, |b| f(b));
        self
    }

    fn record(&mut self, id: &str, mean_ns: f64, iters: u64, thrpt: Option<Throughput>) {
        let Some(path) = &self.json_out else { return };
        let (kind, per_iter) = match thrpt {
            Some(Throughput::Bytes(n)) => ("bytes", n),
            Some(Throughput::Elements(n)) => ("elements", n),
            None => ("none", 0),
        };
        let line = format!(
            "{{\"id\":{id:?},\"mean_ns\":{mean_ns:.1},\"iters\":{iters},\
             \"throughput_kind\":{kind:?},\"throughput_per_iter\":{per_iter}}}\n"
        );
        let r = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = r {
            eprintln!("criterion shim: cannot append {}: {e}", path.display());
        }
    }
}

/// Declares a group-runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            json_out: None,
        };
        let mut count = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("f", |b| b.iter(|| count += 1));
            g.finish();
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn timed_mode_measures_and_reports_iters() {
        let mut c = Criterion {
            mode: Mode::Timed,
            json_out: None,
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        assert!(ran > 1, "timed mode should iterate more than once");
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 32).render(), "f/32");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
