//! `#[derive(Serialize)]` for the offline serde shim.
//!
//! Hand-rolled token parsing (no `syn`/`quote` — the build environment has no
//! crates.io access). Supports the shapes the workspace actually uses:
//!
//! * structs with named fields, including lifetime/type parameters with
//!   inline bounds (e.g. `struct Payload<'a, T: Serialize> { .. }`);
//! * enums whose variants are all unit variants (serialized as their name).

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim trait) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match generate(&tokens) {
        Ok(code) => code.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(tokens: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    skip_attributes(tokens, &mut i);
    skip_visibility(tokens, &mut i);

    let kind = expect_ident(tokens, &mut i)?;
    if kind != "struct" && kind != "enum" {
        return Err(format!(
            "derive(Serialize) shim: expected struct or enum, found `{kind}`"
        ));
    }
    let name = expect_ident(tokens, &mut i)?;
    let (impl_generics, type_generics) = parse_generics(tokens, &mut i);

    // Skip a `where` clause if present (none in this workspace, but cheap).
    while i < tokens.len()
        && !matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
    {
        i += 1;
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g.stream().into_iter().collect::<Vec<_>>(),
        _ => {
            return Err(format!(
                "derive(Serialize) shim: `{name}` has no braced body (tuple/unit items unsupported)"
            ))
        }
    };

    if kind == "struct" {
        let fields = parse_named_fields(&body)?;
        let pushes: String = fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_json(&self.{f})),"
                )
            })
            .collect();
        Ok(format!(
            "impl{impl_generics} ::serde::Serialize for {name}{type_generics} {{\
                 fn to_json(&self) -> ::serde::Json {{\
                     ::serde::Json::Obj(vec![{pushes}])\
                 }}\
             }}"
        ))
    } else {
        let variants = parse_unit_variants(&body, &name)?;
        let arms: String = variants
            .iter()
            .map(|v| {
                format!("{name}::{v} => ::serde::Json::Str(::std::string::String::from({v:?})),")
            })
            .collect();
        Ok(format!(
            "impl{impl_generics} ::serde::Serialize for {name}{type_generics} {{\
                 fn to_json(&self) -> ::serde::Json {{\
                     match self {{ {arms} }}\
                 }}\
             }}"
        ))
    }
}

/// Skips `#[...]` attribute pairs (including doc comments).
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(_))) =
        (tokens.get(*i), tokens.get(*i + 1))
    {
        if p.as_char() != '#' {
            break;
        }
        *i += 2;
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!(
            "derive(Serialize) shim: expected identifier, found {other:?}"
        )),
    }
}

/// Parses `<...>` if present. Returns `(impl_generics, type_generics)`:
/// the verbatim parameter list with bounds for the `impl<...>` position, and
/// the bound-stripped parameter names for the type position.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> (String, String) {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return (String::new(), String::new()),
    }
    *i += 1; // consume '<'
    let mut depth = 1usize;
    let mut inner: Vec<TokenTree> = Vec::new();
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                inner.push(tokens[*i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
                inner.push(tokens[*i].clone());
            }
            t => inner.push(t.clone()),
        }
        *i += 1;
    }

    // Use TokenStream's own Display so lifetimes render as `'a`, not `' a`.
    let verbatim = inner.iter().cloned().collect::<TokenStream>().to_string();
    // Split params on top-level commas, keep each param's name (strip bounds
    // and defaults after ':' / '=').
    let mut names: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut current: Vec<String> = Vec::new();
    let mut bounded = false;
    for t in &inner {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                names.push(current.join(""));
                current.clear();
                bounded = false;
                continue;
            }
            TokenTree::Punct(p) if (p.as_char() == ':' || p.as_char() == '=') && depth == 0 => {
                bounded = true;
            }
            t if !bounded && depth == 0 => current.push(t.to_string()),
            _ => {}
        }
    }
    if !current.is_empty() {
        names.push(current.join(""));
    }
    (format!("<{verbatim}>"), format!("<{}>", names.join(", ")))
}

/// Parses `name: Type, ...` named fields, skipping attributes and visibility.
/// Commas inside angle brackets (e.g. `HashMap<K, V>`) do not split fields.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attributes(body, &mut i);
        skip_visibility(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = expect_ident(body, &mut i)?;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "derive(Serialize) shim: expected `:` after field `{name}`, found {other:?} \
                     (tuple structs unsupported)"
                ))
            }
        }
        fields.push(name);
        // Consume the type: ends at a comma at angle-bracket depth 0.
        let mut depth = 0usize;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Parses unit variants `A, B, C` (discriminants tolerated, fields rejected).
fn parse_unit_variants(body: &[TokenTree], enum_name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attributes(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = expect_ident(body, &mut i)?;
        if let Some(TokenTree::Group(_)) = body.get(i) {
            return Err(format!(
                "derive(Serialize) shim: enum `{enum_name}` variant `{name}` carries data; \
                 only unit variants are supported"
            ));
        }
        variants.push(name);
        // Skip optional `= discriminant` and the trailing comma.
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
    }
    Ok(variants)
}
