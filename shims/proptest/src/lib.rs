//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]` header, range strategies over the numeric
//! types, [`collection::vec`], and the `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Differences from the real crate: case generation is deterministic per
//! case index (no OS entropy), failures are plain panics carrying the case
//! number, and there is **no shrinking** — a failing case prints as-is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG handed to strategies (deterministic per case).
pub type TestRng = SmallRng;

/// Runner configuration (subset of the real `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; the shim never rejects.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 0,
        }
    }
}

/// A value generator: the shim's stand-in for proptest strategies.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: rand::SampleUniform + Clone> Strategy for core::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// A strategy producing a fixed value (stand-in for `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose elements
    /// come from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Runs `body` for each case with a per-case deterministic RNG, labelling
/// panics with the failing case index.
pub fn run_cases(cfg: ProptestConfig, mut body: impl FnMut(&mut TestRng)) {
    for case in 0..cfg.cases {
        // Decorrelate consecutive cases with a SplitMix-style multiplier.
        let seed = (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5_5A5A_DEAD_BEEF;
        let mut rng = TestRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest shim: property failed at case {case}/{}",
                cfg.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Property-test entry point; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(cfg, |__proptest_rng| {
                    $( let $arg = $crate::Strategy::sample(&($strat), __proptest_rng); )+
                    $body
                });
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )+
        }
    };
}

/// Asserts a condition inside a property (plain `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption does not hold. In the shim the
/// case simply counts as passed (no global rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn ranges_respect_bounds(
            a in 3u32..17,
            b in -4i64..9,
            x in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4..9).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }
    }

    proptest! {
        #[test]
        fn vec_strategy_length_and_elements(
            v in collection::vec(0u64..50, 1..200),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 200);
            prop_assert!(v.iter().all(|&e| e < 50));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u32> = Vec::new();
        let cfg = ProptestConfig {
            cases: 5,
            ..ProptestConfig::default()
        };
        crate::run_cases(cfg.clone(), |rng| first.push((0u32..1000).sample(rng)));
        let mut second: Vec<u32> = Vec::new();
        crate::run_cases(cfg, |rng| second.push((0u32..1000).sample(rng)));
        assert_eq!(first, second);
    }
}
