//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *small* API surface it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction `rand`'s `SmallRng` used on 64-bit
//! targets in the 0.8 line — so it is deterministic, seedable, fast, and
//! statistically strong enough for test-data generation (it is *not*
//! cryptographically secure, exactly like the real `SmallRng`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Sources of randomness: anything that can produce `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an `Rng` (stand-in for the
/// `Standard` distribution of the real crate).
pub trait Sample: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over a half-open `start..end` range.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `start..end`. Panics if the range is
    /// empty, matching the real crate.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                // Lemire's multiply-shift: unbiased enough for test data.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start < end, "cannot sample empty range");
        start + f32::sample(rng) * (end - start)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start < end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// The user-facing sampling interface (subset of the real `Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of `T` (full integer range, `[0, 1)` for floats).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range.start..range.end`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — deterministic and fast, the same
    /// construction the real `SmallRng` used on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_constructions() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = r.gen_range(10u32..15);
            assert!((10..15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range should appear"
        );
    }

    #[test]
    fn gen_range_floats() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = r.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&v));
        }
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.gen()
        }
        let mut r = SmallRng::seed_from_u64(9);
        let _ = draw(&mut r);
    }
}
